#include "frontier/frontier.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <map>

#include "api/registry.hpp"
#include "common/parallel.hpp"
#include "frontier/analytics.hpp"

namespace easched::frontier {
namespace {

/// Evaluates one constraint point; fills *cache_hit when served warm.
/// Results come back shared so a warm probe never copies the stored
/// schedule — the lookup stays O(1) in the instance size.
using EvalResult = SolveCache::CachedResult;
using EvalFn = std::function<EvalResult(double, bool*)>;

EvalResult wrap_uncached(common::Result<api::SolveReport> result) {
  return std::make_shared<const common::Result<api::SolveReport>>(std::move(result));
}

/// The one deadline-axis eval used by sweeps and resweeps alike: with a
/// cache it interns the instance once (here, not per probe) and issues
/// O(1) POD-keyed lookups; without one it solves directly. Sharing the
/// builder guarantees a resweep's prefetch writes exactly the keys its
/// replay reads.
template <typename Problem>
EvalFn make_deadline_eval(SolveCache* cache, const Problem& problem,
                          const FrontierOptions& options) {
  if (cache == nullptr) {
    return [&problem, &options](double deadline, bool*) {
      api::SolveOptions solve_options = options.solve;
      // The slack policy retargets the fixed problem to the swept
      // deadline without rebuilding the instance.
      solve_options.deadline_slack = deadline / problem.deadline;
      return wrap_uncached(
          api::solve(api::SolveRequest(problem, options.solver, solve_options)));
    };
  }
  api::SolveRequest anchor(problem, options.solver, options.solve);
  const SolveCache::InstanceContext context = cache->context_for(anchor);
  return [cache, &problem, &options, context](double deadline, bool* cache_hit) {
    api::SolveOptions solve_options = options.solve;
    solve_options.deadline_slack = deadline / problem.deadline;
    api::SolveRequest request(problem, options.solver, solve_options);
    return cache->solve_shared(request, SolveCache::key_for(context, request),
                               cache_hit);
  };
}

/// Reliability-axis counterpart: frel lives in the per-point key suffix,
/// so one interned context serves every threshold of the sweep.
EvalFn make_reliability_eval(SolveCache* cache, const core::TriCritProblem& problem,
                             const FrontierOptions& options) {
  const model::ReliabilityModel& base = problem.reliability;
  auto swept_request = [&problem, &base, &options](double frel) {
    model::ReliabilityModel rel(base.lambda0(), base.sensitivity(), base.fmin(),
                                base.fmax(), frel);
    return core::TriCritProblem(problem.dag, problem.mapping, problem.speeds, rel,
                                problem.deadline);
  };
  if (cache == nullptr) {
    return [&options, swept_request](double frel, bool*) {
      const core::TriCritProblem swept = swept_request(frel);
      return wrap_uncached(
          api::solve(api::SolveRequest(swept, options.solver, options.solve)));
    };
  }
  api::SolveRequest anchor(problem, options.solver, options.solve);
  const SolveCache::InstanceContext context = cache->context_for(anchor);
  return [cache, &problem, &options, swept_request, context](double frel,
                                                             bool* cache_hit) {
    // Key first, from the point scalars alone: materialising the swept
    // problem copies the whole DAG and mapping, which a warm probe must
    // not pay — that copy happens only on the miss path below.
    const CacheKey key = SolveCache::key_for(
        context, api::ProblemKind::kTriCrit,
        problem.deadline * options.solve.deadline_slack, frel, options.solve);
    if (EvalResult found = cache->try_get(key, cache_hit)) return found;
    const core::TriCritProblem swept = swept_request(frel);
    api::SolveRequest request(swept, options.solver, options.solve);
    return cache->solve_shared(request, key, cache_hit);
  };
}

struct Eval {
  bool feasible = false;
  bool cache_hit = false;
  FrontierPoint point;  ///< valid when feasible
  common::Status status = common::Status::ok();
};

/// Statuses that legitimately vary per constraint point. Anything else
/// (unknown solver, invalid options, internal errors) would fail the
/// same way at every point and must abort the sweep instead.
bool point_level_failure(const common::Status& status) {
  switch (status.code()) {
    case common::StatusCode::kInfeasible:
    case common::StatusCode::kUnsupported:
    case common::StatusCode::kNotConverged:
      return true;
    default:
      return false;
  }
}

/// The uniform starting grid of a sweep over [lo, hi]. Factored out so
/// resweep's prefetch reproduces the replay's grid doubles bit-exactly.
std::vector<double> initial_grid(double lo, double hi, int initial) {
  std::vector<double> grid;
  const double span = hi - lo;
  if (span == 0.0 || initial == 1) {
    grid.push_back(lo);
    return grid;
  }
  for (int i = 0; i < initial; ++i) {
    // Pin the last point to `hi` exactly: lo + span * 1.0 can land one
    // ulp outside the range and fail the callers' bound checks.
    grid.push_back(i == initial - 1 ? hi
                                    : lo + span * static_cast<double>(i) / (initial - 1));
  }
  return grid;
}

/// Shared sweep driver: uniform grid, then bisection rounds. All decisions
/// (which intervals to split, in which order) derive from the solved
/// energies and the total order on constraints, never from timing or
/// thread interleaving — so the evaluated set is deterministic.
FrontierResult run_sweep(ConstraintAxis axis, double lo, double hi,
                         const FrontierOptions& options, const EvalFn& eval_at) {
  const auto start = std::chrono::steady_clock::now();
  EASCHED_CHECK_MSG(lo > 0.0 && lo <= hi, "frontier sweep needs 0 < lo <= hi");

  FrontierResult result;
  result.axis = axis;

  const int initial = std::max(1, options.initial_points);
  const int max_points = std::max(initial, options.max_points);
  const double span = hi - lo;
  const double min_gap = span * std::max(options.min_rel_spacing, 0.0);

  std::map<double, Eval> evaluated;  // keyed by constraint, ascending
  std::atomic<std::size_t> cache_hits{0};

  const auto cancelled = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  auto evaluate_batch = [&](const std::vector<double>& constraints) {
    std::vector<Eval> evals(constraints.size());
    const auto eval_one = [&](std::size_t i) {
      Eval e;
      const EvalResult r = eval_at(constraints[i], &e.cache_hit);
      if (r->is_ok()) {
        e.feasible = true;
        e.point.constraint = constraints[i];
        e.point.energy = r->value().energy;
        e.point.makespan = r->value().makespan;
        e.point.solver = r->value().solver;
        e.point.exact = r->value().exact;
      } else {
        e.status = r->status();
      }
      if (e.cache_hit) cache_hits.fetch_add(1, std::memory_order_relaxed);
      evals[i] = std::move(e);
    };
    if (options.pool != nullptr) {
      options.pool->parallel(constraints.size(), eval_one);
    } else {
      common::parallel_for(constraints.size(), eval_one, options.threads);
    }
    // Stream before the map absorbs the evals: batch order (grid order,
    // then candidate-score order) is deterministic, so observers replaying
    // the stream see the same sequence on every run and thread count.
    if (options.on_point) {
      for (const Eval& e : evals) {
        if (e.feasible) options.on_point(e.point);
      }
    }
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      evaluated.emplace(constraints[i], std::move(evals[i]));
    }
  };

  if (cancelled()) {
    result.error = common::Status::cancelled("frontier sweep cancelled");
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
  }
  evaluate_batch(initial_grid(lo, hi, initial));

  // Deterministic: the scan runs in constraint order, not solve order.
  auto request_level_error = [&]() -> common::Status {
    for (const auto& [c, e] : evaluated) {
      if (!e.feasible && !e.status.is_ok() && !point_level_failure(e.status)) {
        return e.status;
      }
    }
    return common::Status::ok();
  };

  result.error = request_level_error();
  for (int round = 0; result.error.is_ok() && round < options.max_refine_rounds;
       ++round) {
    if (cancelled()) {
      // Cooperative stop between rounds: every in-flight solve of the
      // previous round has completed and is cached/persisted, so the
      // partial curve below is consistent — just shallower than a full
      // sweep would be.
      result.error = common::Status::cancelled("frontier sweep cancelled");
      break;
    }
    const int budget = max_points - static_cast<int>(evaluated.size());
    if (budget <= 0) break;

    std::vector<std::pair<double, const Eval*>> all(evaluated.size());
    std::size_t idx = 0;
    for (const auto& [c, e] : evaluated) all[idx++] = {c, &e};

    // Candidate midpoints, scored by how much the curve bends there; the
    // feasibility boundary always refines first (the knee lives there).
    std::vector<std::pair<double, double>> candidates;  // (score, midpoint)
    auto propose = [&](double a, double b, double score) {
      if (b - a <= 2.0 * min_gap) return;
      const double mid = 0.5 * (a + b);
      if (evaluated.count(mid) != 0) return;
      candidates.emplace_back(score, mid);
    };
    for (std::size_t i = 0; i + 1 < all.size(); ++i) {
      if (all[i].second->feasible != all[i + 1].second->feasible) {
        propose(all[i].first, all[i + 1].first,
                std::numeric_limits<double>::infinity());
      }
    }
    std::vector<const Eval*> feasible;
    double e_min = std::numeric_limits<double>::infinity();
    double e_max = -std::numeric_limits<double>::infinity();
    for (const auto& [c, e] : all) {
      if (!e->feasible) continue;
      feasible.push_back(e);
      e_min = std::min(e_min, e->point.energy);
      e_max = std::max(e_max, e->point.energy);
    }
    const double e_range = e_max - e_min;
    if (e_range > 0.0) {
      for (std::size_t i = 1; i + 1 < feasible.size(); ++i) {
        const FrontierPoint& a = feasible[i - 1]->point;
        const FrontierPoint& b = feasible[i]->point;
        const FrontierPoint& c = feasible[i + 1]->point;
        const double t = (b.constraint - a.constraint) / (c.constraint - a.constraint);
        const double chord = a.energy + t * (c.energy - a.energy);
        const double deviation = std::abs(b.energy - chord) / e_range;
        if (deviation > options.bend_tolerance) {
          propose(a.constraint, b.constraint, deviation);
          propose(b.constraint, c.constraint, deviation);
        }
      }
    }
    if (candidates.empty()) break;

    std::sort(candidates.begin(), candidates.end(),
              [](const std::pair<double, double>& x, const std::pair<double, double>& y) {
                if (x.first != y.first) return x.first > y.first;
                return x.second < y.second;
              });
    std::vector<double> batch;
    for (const auto& [score, mid] : candidates) {
      if (static_cast<int>(batch.size()) >= budget) break;
      if (std::find(batch.begin(), batch.end(), mid) == batch.end()) {
        batch.push_back(mid);
      }
    }
    if (batch.empty()) break;
    evaluate_batch(batch);
    result.error = request_level_error();
  }

  std::vector<FrontierPoint> feasible_points;
  result.probes.reserve(evaluated.size());
  for (auto& [c, e] : evaluated) {
    result.probes.push_back(c);
    if (e.feasible) {
      feasible_points.push_back(std::move(e.point));
    } else if (point_level_failure(e.status)) {
      ++result.infeasible;
    }
  }
  result.evaluated = evaluated.size();
  result.cache_hits = cache_hits.load(std::memory_order_relaxed);
  result.points = pareto_filter(std::move(feasible_points), axis, &result.dominated);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

/// Prefetch phase of resweep: solve prev's probe positions (clipped to
/// the new range, deduplicated against the replay's grid which is solved
/// either way) in one parallel batch through `eval_at`, so the replay
/// finds them cached. Returns how many probes were prefetched.
std::size_t prefetch_probes(const FrontierResult& prev, double lo, double hi,
                            const FrontierOptions& options, const EvalFn& eval_at) {
  const int initial = std::max(1, options.initial_points);
  std::vector<double> batch = initial_grid(lo, hi, initial);
  for (double c : prev.probes) {
    if (c >= lo && c <= hi) batch.push_back(c);
  }
  // Seeds from results that predate the probe trace: curve + dominated.
  if (prev.probes.empty()) {
    for (const auto& p : prev.points) {
      if (p.constraint >= lo && p.constraint <= hi) batch.push_back(p.constraint);
    }
    for (const auto& p : prev.dominated) {
      if (p.constraint >= lo && p.constraint <= hi) batch.push_back(p.constraint);
    }
  }
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  const auto prefetch_one = [&](std::size_t i) {
    // The prefetch is pure speculation, so a pending cancellation just
    // skips the remaining probes — the replay handles the cancel status.
    if (options.cancel != nullptr && options.cancel->load(std::memory_order_relaxed)) {
      return;
    }
    bool hit = false;
    (void)eval_at(batch[i], &hit);
  };
  if (options.pool != nullptr) {
    options.pool->parallel(batch.size(), prefetch_one);
  } else {
    common::parallel_for(batch.size(), prefetch_one, options.threads);
  }
  return batch.size();
}

/// Shared resweep scaffold: speculative prefetch (when the engine has a
/// cache), then the exact replay `sweep`, with the full prefetch+replay
/// span as wall_ms. `eval` may be null (no cache: nothing to prefetch).
FrontierResult resweep_run(const FrontierResult& prev, double lo, double hi,
                           const FrontierOptions& options, const EvalFn* eval,
                           const std::function<FrontierResult()>& sweep) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t prefetched =
      eval != nullptr ? prefetch_probes(prev, lo, hi, options, *eval) : 0;
  FrontierResult result = sweep();
  result.prefetched = prefetched;
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace

FrontierResult FrontierEngine::deadline_sweep(const core::BiCritProblem& problem,
                                              double dmin, double dmax,
                                              const FrontierOptions& options) const {
  EASCHED_CHECK_MSG(problem.deadline > 0.0,
                    "deadline_sweep needs a positive anchor deadline");
  return run_sweep(ConstraintAxis::kDeadline, dmin, dmax, options,
                   make_deadline_eval(cache_, problem, options));
}

FrontierResult FrontierEngine::deadline_sweep(const core::TriCritProblem& problem,
                                              double dmin, double dmax,
                                              const FrontierOptions& options) const {
  EASCHED_CHECK_MSG(problem.deadline > 0.0,
                    "deadline_sweep needs a positive anchor deadline");
  return run_sweep(ConstraintAxis::kDeadline, dmin, dmax, options,
                   make_deadline_eval(cache_, problem, options));
}

FrontierResult FrontierEngine::reliability_sweep(const core::TriCritProblem& problem,
                                                 double rmin, double rmax,
                                                 const FrontierOptions& options) const {
  const model::ReliabilityModel& base = problem.reliability;
  EASCHED_CHECK_MSG(rmin >= base.fmin() && rmax <= base.fmax(),
                    "reliability sweep range must lie within [fmin, fmax]");
  return run_sweep(ConstraintAxis::kReliability, rmin, rmax, options,
                   make_reliability_eval(cache_, problem, options));
}

FrontierResult FrontierEngine::resweep(const FrontierResult& prev,
                                       const core::BiCritProblem& problem, double dmin,
                                       double dmax, const FrontierOptions& options) const {
  EASCHED_CHECK_MSG(prev.axis == ConstraintAxis::kDeadline,
                    "resweep needs a deadline-axis previous curve");
  EASCHED_CHECK_MSG(problem.deadline > 0.0,
                    "resweep needs a positive anchor deadline");
  const EvalFn eval = make_deadline_eval(cache_, problem, options);
  return resweep_run(prev, dmin, dmax, options, cache_ != nullptr ? &eval : nullptr,
                     [&] {
                       return run_sweep(ConstraintAxis::kDeadline, dmin, dmax, options,
                                        eval);
                     });
}

FrontierResult FrontierEngine::resweep(const FrontierResult& prev,
                                       const core::TriCritProblem& problem, double dmin,
                                       double dmax, const FrontierOptions& options) const {
  EASCHED_CHECK_MSG(prev.axis == ConstraintAxis::kDeadline,
                    "resweep needs a deadline-axis previous curve");
  EASCHED_CHECK_MSG(problem.deadline > 0.0,
                    "resweep needs a positive anchor deadline");
  const EvalFn eval = make_deadline_eval(cache_, problem, options);
  return resweep_run(prev, dmin, dmax, options, cache_ != nullptr ? &eval : nullptr,
                     [&] {
                       return run_sweep(ConstraintAxis::kDeadline, dmin, dmax, options,
                                        eval);
                     });
}

FrontierResult FrontierEngine::resweep_reliability(const FrontierResult& prev,
                                                   const core::TriCritProblem& problem,
                                                   double rmin, double rmax,
                                                   const FrontierOptions& options) const {
  EASCHED_CHECK_MSG(prev.axis == ConstraintAxis::kReliability,
                    "resweep_reliability needs a reliability-axis previous curve");
  const model::ReliabilityModel& base = problem.reliability;
  EASCHED_CHECK_MSG(rmin >= base.fmin() && rmax <= base.fmax(),
                    "reliability sweep range must lie within [fmin, fmax]");
  const EvalFn eval = make_reliability_eval(cache_, problem, options);
  return resweep_run(prev, rmin, rmax, options, cache_ != nullptr ? &eval : nullptr,
                     [&] {
                       return run_sweep(ConstraintAxis::kReliability, rmin, rmax,
                                        options, eval);
                     });
}

}  // namespace easched::frontier
