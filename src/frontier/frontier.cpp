#include "frontier/frontier.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <map>

#include "api/registry.hpp"
#include "common/parallel.hpp"
#include "frontier/analytics.hpp"

namespace easched::frontier {
namespace {

/// Evaluates one constraint point; fills *cache_hit when served warm.
using EvalFn = std::function<common::Result<api::SolveReport>(double, bool*)>;

struct Eval {
  bool feasible = false;
  bool cache_hit = false;
  FrontierPoint point;  ///< valid when feasible
  common::Status status = common::Status::ok();
};

/// Statuses that legitimately vary per constraint point. Anything else
/// (unknown solver, invalid options, internal errors) would fail the
/// same way at every point and must abort the sweep instead.
bool point_level_failure(const common::Status& status) {
  switch (status.code()) {
    case common::StatusCode::kInfeasible:
    case common::StatusCode::kUnsupported:
    case common::StatusCode::kNotConverged:
      return true;
    default:
      return false;
  }
}

/// Shared sweep driver: uniform grid, then bisection rounds. All decisions
/// (which intervals to split, in which order) derive from the solved
/// energies and the total order on constraints, never from timing or
/// thread interleaving — so the evaluated set is deterministic.
FrontierResult run_sweep(ConstraintAxis axis, double lo, double hi,
                         const FrontierOptions& options, const EvalFn& eval_at) {
  const auto start = std::chrono::steady_clock::now();
  EASCHED_CHECK_MSG(lo > 0.0 && lo <= hi, "frontier sweep needs 0 < lo <= hi");

  FrontierResult result;
  result.axis = axis;

  const int initial = std::max(1, options.initial_points);
  const int max_points = std::max(initial, options.max_points);
  const double span = hi - lo;
  const double min_gap = span * std::max(options.min_rel_spacing, 0.0);

  std::map<double, Eval> evaluated;  // keyed by constraint, ascending
  std::atomic<std::size_t> cache_hits{0};

  auto evaluate_batch = [&](const std::vector<double>& constraints) {
    std::vector<Eval> evals(constraints.size());
    common::parallel_for(
        constraints.size(),
        [&](std::size_t i) {
          Eval e;
          auto r = eval_at(constraints[i], &e.cache_hit);
          if (r.is_ok()) {
            e.feasible = true;
            e.point.constraint = constraints[i];
            e.point.energy = r.value().energy;
            e.point.makespan = r.value().makespan;
            e.point.solver = r.value().solver;
            e.point.exact = r.value().exact;
          } else {
            e.status = r.status();
          }
          if (e.cache_hit) cache_hits.fetch_add(1, std::memory_order_relaxed);
          evals[i] = std::move(e);
        },
        options.threads);
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      evaluated.emplace(constraints[i], std::move(evals[i]));
    }
  };

  std::vector<double> grid;
  if (span == 0.0 || initial == 1) {
    grid.push_back(lo);
  } else {
    for (int i = 0; i < initial; ++i) {
      // Pin the last point to `hi` exactly: lo + span * 1.0 can land one
      // ulp outside the range and fail the callers' bound checks.
      grid.push_back(i == initial - 1 ? hi
                                      : lo + span * static_cast<double>(i) / (initial - 1));
    }
  }
  evaluate_batch(grid);

  // Deterministic: the scan runs in constraint order, not solve order.
  auto request_level_error = [&]() -> common::Status {
    for (const auto& [c, e] : evaluated) {
      if (!e.feasible && !e.status.is_ok() && !point_level_failure(e.status)) {
        return e.status;
      }
    }
    return common::Status::ok();
  };

  result.error = request_level_error();
  for (int round = 0; result.error.is_ok() && round < options.max_refine_rounds;
       ++round) {
    const int budget = max_points - static_cast<int>(evaluated.size());
    if (budget <= 0) break;

    std::vector<std::pair<double, const Eval*>> all(evaluated.size());
    std::size_t idx = 0;
    for (const auto& [c, e] : evaluated) all[idx++] = {c, &e};

    // Candidate midpoints, scored by how much the curve bends there; the
    // feasibility boundary always refines first (the knee lives there).
    std::vector<std::pair<double, double>> candidates;  // (score, midpoint)
    auto propose = [&](double a, double b, double score) {
      if (b - a <= 2.0 * min_gap) return;
      const double mid = 0.5 * (a + b);
      if (evaluated.count(mid) != 0) return;
      candidates.emplace_back(score, mid);
    };
    for (std::size_t i = 0; i + 1 < all.size(); ++i) {
      if (all[i].second->feasible != all[i + 1].second->feasible) {
        propose(all[i].first, all[i + 1].first,
                std::numeric_limits<double>::infinity());
      }
    }
    std::vector<const Eval*> feasible;
    double e_min = std::numeric_limits<double>::infinity();
    double e_max = -std::numeric_limits<double>::infinity();
    for (const auto& [c, e] : all) {
      if (!e->feasible) continue;
      feasible.push_back(e);
      e_min = std::min(e_min, e->point.energy);
      e_max = std::max(e_max, e->point.energy);
    }
    const double e_range = e_max - e_min;
    if (e_range > 0.0) {
      for (std::size_t i = 1; i + 1 < feasible.size(); ++i) {
        const FrontierPoint& a = feasible[i - 1]->point;
        const FrontierPoint& b = feasible[i]->point;
        const FrontierPoint& c = feasible[i + 1]->point;
        const double t = (b.constraint - a.constraint) / (c.constraint - a.constraint);
        const double chord = a.energy + t * (c.energy - a.energy);
        const double deviation = std::abs(b.energy - chord) / e_range;
        if (deviation > options.bend_tolerance) {
          propose(a.constraint, b.constraint, deviation);
          propose(b.constraint, c.constraint, deviation);
        }
      }
    }
    if (candidates.empty()) break;

    std::sort(candidates.begin(), candidates.end(),
              [](const std::pair<double, double>& x, const std::pair<double, double>& y) {
                if (x.first != y.first) return x.first > y.first;
                return x.second < y.second;
              });
    std::vector<double> batch;
    for (const auto& [score, mid] : candidates) {
      if (static_cast<int>(batch.size()) >= budget) break;
      if (std::find(batch.begin(), batch.end(), mid) == batch.end()) {
        batch.push_back(mid);
      }
    }
    if (batch.empty()) break;
    evaluate_batch(batch);
    result.error = request_level_error();
  }

  std::vector<FrontierPoint> feasible_points;
  for (auto& [c, e] : evaluated) {
    if (e.feasible) {
      feasible_points.push_back(std::move(e.point));
    } else if (point_level_failure(e.status)) {
      ++result.infeasible;
    }
  }
  result.evaluated = evaluated.size();
  result.cache_hits = cache_hits.load(std::memory_order_relaxed);
  result.points = pareto_filter(std::move(feasible_points), axis, &result.dominated);
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace

FrontierResult FrontierEngine::deadline_sweep(const core::BiCritProblem& problem,
                                              double dmin, double dmax,
                                              const FrontierOptions& options) const {
  EASCHED_CHECK_MSG(problem.deadline > 0.0,
                    "deadline_sweep needs a positive anchor deadline");
  return run_sweep(ConstraintAxis::kDeadline, dmin, dmax, options,
                   [&](double deadline, bool* cache_hit) {
                     // The slack policy retargets the fixed problem to the
                     // swept deadline without rebuilding the instance.
                     api::SolveOptions solve_options = options.solve;
                     solve_options.deadline_slack = deadline / problem.deadline;
                     api::SolveRequest request(problem, options.solver, solve_options);
                     return cache_ != nullptr ? cache_->solve(request, cache_hit)
                                              : api::solve(request);
                   });
}

FrontierResult FrontierEngine::deadline_sweep(const core::TriCritProblem& problem,
                                              double dmin, double dmax,
                                              const FrontierOptions& options) const {
  EASCHED_CHECK_MSG(problem.deadline > 0.0,
                    "deadline_sweep needs a positive anchor deadline");
  return run_sweep(ConstraintAxis::kDeadline, dmin, dmax, options,
                   [&](double deadline, bool* cache_hit) {
                     api::SolveOptions solve_options = options.solve;
                     solve_options.deadline_slack = deadline / problem.deadline;
                     api::SolveRequest request(problem, options.solver, solve_options);
                     return cache_ != nullptr ? cache_->solve(request, cache_hit)
                                              : api::solve(request);
                   });
}

FrontierResult FrontierEngine::reliability_sweep(const core::TriCritProblem& problem,
                                                 double rmin, double rmax,
                                                 const FrontierOptions& options) const {
  const model::ReliabilityModel& base = problem.reliability;
  EASCHED_CHECK_MSG(rmin >= base.fmin() && rmax <= base.fmax(),
                    "reliability sweep range must lie within [fmin, fmax]");
  return run_sweep(ConstraintAxis::kReliability, rmin, rmax, options,
                   [&](double frel, bool* cache_hit) {
                     model::ReliabilityModel rel(base.lambda0(), base.sensitivity(),
                                                 base.fmin(), base.fmax(), frel);
                     core::TriCritProblem swept(problem.dag, problem.mapping,
                                                problem.speeds, rel, problem.deadline);
                     api::SolveRequest request(swept, options.solver, options.solve);
                     return cache_ != nullptr ? cache_->solve(request, cache_hit)
                                              : api::solve(request);
                   });
}

}  // namespace easched::frontier
