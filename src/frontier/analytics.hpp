#pragma once
// Frontier analytics: dominance filtering and scalar quality metrics.
//
// A frontier is only comparable across solvers through scalar summaries;
// the two standard ones from the multi-objective literature are provided:
// the 2-D hypervolume (area dominated up to a reference corner — larger is
// better) and the area under the energy curve (smaller is better). Both
// reduce a whole trade-off curve to one number in common/stats style, so
// benches can tabulate them next to means and deviations.

#include <vector>

#include "common/stats.hpp"
#include "frontier/frontier.hpp"

namespace easched::frontier {

/// Pareto dominance under the axis' sense: `a` dominates `b` when it is at
/// least as good on both objectives and strictly better on one. Energy is
/// always minimised; the constraint is minimised on kDeadline and
/// maximised on kReliability.
bool dominates(const FrontierPoint& a, const FrontierPoint& b, ConstraintAxis axis);

/// The non-dominated subset of `points`, sorted by ascending constraint.
/// Exact duplicates collapse to one point. When `dominated` is non-null
/// the removed points are appended to it (ascending constraint).
std::vector<FrontierPoint> pareto_filter(std::vector<FrontierPoint> points,
                                         ConstraintAxis axis,
                                         std::vector<FrontierPoint>* dominated = nullptr);

/// Trapezoidal area under the energy curve over the constraint axis;
/// `frontier` must be sorted by ascending constraint. 0 for < 2 points.
double area_under_curve(const std::vector<FrontierPoint>& frontier);

/// 2-D hypervolume: the area dominated by the frontier inside the box
/// bounded by the reference corner (ref_constraint, ref_energy). The
/// reference must be weakly worse than every point (it is clamped per
/// point otherwise). Larger is better; 0 for an empty frontier.
double hypervolume(const std::vector<FrontierPoint>& frontier, ConstraintAxis axis,
                   double ref_constraint, double ref_energy);

/// Scalar summary of a sweep, ready for bench tables.
struct FrontierSummary {
  std::size_t points = 0;          ///< frontier size
  double constraint_lo = 0.0;      ///< frontier constraint span
  double constraint_hi = 0.0;
  common::OnlineStats energy;      ///< over the frontier points
  double auc = 0.0;                ///< area_under_curve
  double hypervolume = 0.0;        ///< against the frontier's worst corner
};

/// Summarises `result.points`; the hypervolume reference is the frontier's
/// own worst corner (worst constraint, worst energy), so it measures the
/// curvature captured between the curve's extremes.
FrontierSummary summarize(const FrontierResult& result);

}  // namespace easched::frontier
