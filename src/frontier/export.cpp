#include "frontier/export.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/table.hpp"

namespace easched::frontier {
namespace {

/// %.17g: enough digits that strtod reconstructs the exact double.
std::string format_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_point_json(const FrontierPoint& p, std::ostream& os) {
  os << "{\"constraint\": " << format_exact(p.constraint)
     << ", \"energy\": " << format_exact(p.energy)
     << ", \"makespan\": " << format_exact(p.makespan) << ", \"solver\": \""
     << json_escape(p.solver) << "\", \"exact\": " << (p.exact ? "true" : "false")
     << "}";
}

void write_points_json(const std::vector<FrontierPoint>& points, std::ostream& os) {
  os << "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != 0) os << ", ";
    write_point_json(points[i], os);
  }
  os << "]";
}

void write_frontier_json_value(const FrontierResult& result, std::ostream& os) {
  os << "{\"axis\": \"" << to_string(result.axis) << "\""
     << ", \"evaluated\": " << result.evaluated
     << ", \"infeasible\": " << result.infeasible
     << ", \"cache_hits\": " << result.cache_hits
     << ", \"wall_ms\": " << format_exact(result.wall_ms);
  if (!result.error.is_ok()) {
    os << ", \"error\": \"" << json_escape(result.error.to_string()) << "\"";
  }
  os << ", \"points\": ";
  write_points_json(result.points, os);
  os << ", \"dominated\": ";
  write_points_json(result.dominated, os);
  os << "}";
}

}  // namespace

void write_frontier_csv(const FrontierResult& result, std::ostream& os) {
  common::Table table({"constraint", "energy", "makespan", "solver", "exact"});
  for (const auto& p : result.points) {
    table.add_row({format_exact(p.constraint), format_exact(p.energy),
                   format_exact(p.makespan), p.solver, p.exact ? "1" : "0"});
  }
  table.write_csv(os);
}

void write_frontier_json(const FrontierResult& result, std::ostream& os) {
  write_frontier_json_value(result, os);
  os << "\n";
}

void write_comparison_csv(const FrontierComparison& comparison, std::ostream& os) {
  common::Table table({"solver", "constraint", "energy", "makespan", "exact"});
  for (const auto& sf : comparison.solvers) {
    for (const auto& p : sf.result.points) {
      table.add_row({sf.solver, format_exact(p.constraint), format_exact(p.energy),
                     format_exact(p.makespan), p.exact ? "1" : "0"});
    }
  }
  table.write_csv(os);
}

void write_comparison_json(const FrontierComparison& comparison, std::ostream& os) {
  os << "{\"axis\": \"" << to_string(comparison.axis) << "\", \"solvers\": [";
  for (std::size_t i = 0; i < comparison.solvers.size(); ++i) {
    if (i != 0) os << ", ";
    os << "{\"solver\": \"" << json_escape(comparison.solvers[i].solver)
       << "\", \"frontier\": ";
    write_frontier_json_value(comparison.solvers[i].result, os);
    os << "}";
  }
  os << "], \"segments\": [";
  for (std::size_t i = 0; i < comparison.segments.size(); ++i) {
    if (i != 0) os << ", ";
    const auto& seg = comparison.segments[i];
    os << "{\"lo\": " << format_exact(seg.lo) << ", \"hi\": " << format_exact(seg.hi)
       << ", \"solver\": \"" << json_escape(seg.solver) << "\"}";
  }
  os << "]}\n";
}

std::string frontier_to_csv(const FrontierResult& result) {
  std::ostringstream os;
  write_frontier_csv(result, os);
  return os.str();
}

std::string frontier_to_json(const FrontierResult& result) {
  std::ostringstream os;
  write_frontier_json(result, os);
  return os.str();
}

}  // namespace easched::frontier
