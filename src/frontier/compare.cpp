#include "frontier/compare.hpp"

#include <algorithm>
#include <functional>
#include <limits>

namespace easched::frontier {
namespace {

/// Builds dominance segments from per-solver sweeps: evaluate every
/// frontier at the union of all constraint values, pick the per-point
/// winner, and merge maximal same-winner runs.
FrontierComparison build_comparison(ConstraintAxis axis,
                                    std::vector<SolverFrontier> solvers) {
  FrontierComparison comparison;
  comparison.axis = axis;
  comparison.solvers = std::move(solvers);

  std::vector<double> constraints;
  for (const auto& sf : comparison.solvers) {
    for (const auto& p : sf.result.points) constraints.push_back(p.constraint);
  }
  std::sort(constraints.begin(), constraints.end());
  constraints.erase(std::unique(constraints.begin(), constraints.end()),
                    constraints.end());

  int current = -1;
  for (double c : constraints) {
    double best = std::numeric_limits<double>::infinity();
    int winner = -1;
    for (std::size_t i = 0; i < comparison.solvers.size(); ++i) {
      const double e =
          frontier_energy_at(comparison.solvers[i].result.points, axis, c);
      if (e < best) {
        best = e;
        winner = static_cast<int>(i);
      }
    }
    if (winner < 0) {
      current = -1;
      continue;
    }
    if (winner == current) {
      comparison.segments.back().hi = c;
    } else {
      DominanceSegment seg;
      seg.lo = c;
      seg.hi = c;
      seg.solver = comparison.solvers[static_cast<std::size_t>(winner)].solver;
      comparison.segments.push_back(std::move(seg));
      current = winner;
    }
  }
  return comparison;
}

/// Runs `sweep` once per named solver (options.solver overridden) and
/// builds the comparison.
FrontierComparison compare_with(
    ConstraintAxis axis, const std::vector<std::string>& solvers,
    const FrontierOptions& options,
    const std::function<FrontierResult(const FrontierOptions&)>& sweep) {
  std::vector<SolverFrontier> swept;
  swept.reserve(solvers.size());
  for (const auto& name : solvers) {
    FrontierOptions per_solver = options;
    per_solver.solver = name;
    SolverFrontier sf;
    sf.solver = name;
    sf.result = sweep(per_solver);
    sf.summary = summarize(sf.result);
    swept.push_back(std::move(sf));
  }
  return build_comparison(axis, std::move(swept));
}

}  // namespace

double frontier_energy_at(const std::vector<FrontierPoint>& frontier,
                          ConstraintAxis axis, double constraint) {
  if (frontier.empty()) return std::numeric_limits<double>::infinity();
  const double lo = frontier.front().constraint;
  const double hi = frontier.back().constraint;
  if (constraint < lo) {
    // Below the span: tight side for deadlines, loose side for frel.
    return axis == ConstraintAxis::kDeadline ? std::numeric_limits<double>::infinity()
                                             : frontier.front().energy;
  }
  if (constraint > hi) {
    return axis == ConstraintAxis::kDeadline ? frontier.back().energy
                                             : std::numeric_limits<double>::infinity();
  }
  const auto it = std::lower_bound(frontier.begin(), frontier.end(), constraint,
                                   [](const FrontierPoint& p, double c) {
                                     return p.constraint < c;
                                   });
  if (it->constraint == constraint || it == frontier.begin()) return it->energy;
  const auto prev = it - 1;
  const double t = (constraint - prev->constraint) / (it->constraint - prev->constraint);
  return prev->energy + t * (it->energy - prev->energy);
}

FrontierComparison compare_deadline(const FrontierEngine& engine,
                                    const core::BiCritProblem& problem,
                                    const std::vector<std::string>& solvers,
                                    double dmin, double dmax,
                                    const FrontierOptions& options) {
  return compare_with(ConstraintAxis::kDeadline, solvers, options,
                      [&](const FrontierOptions& per_solver) {
                        return engine.deadline_sweep(problem, dmin, dmax, per_solver);
                      });
}

FrontierComparison compare_deadline(const FrontierEngine& engine,
                                    const core::TriCritProblem& problem,
                                    const std::vector<std::string>& solvers,
                                    double dmin, double dmax,
                                    const FrontierOptions& options) {
  return compare_with(ConstraintAxis::kDeadline, solvers, options,
                      [&](const FrontierOptions& per_solver) {
                        return engine.deadline_sweep(problem, dmin, dmax, per_solver);
                      });
}

FrontierComparison compare_reliability(const FrontierEngine& engine,
                                       const core::TriCritProblem& problem,
                                       const std::vector<std::string>& solvers,
                                       double rmin, double rmax,
                                       const FrontierOptions& options) {
  return compare_with(ConstraintAxis::kReliability, solvers, options,
                      [&](const FrontierOptions& per_solver) {
                        return engine.reliability_sweep(problem, rmin, rmax, per_solver);
                      });
}

}  // namespace easched::frontier
