#include "frontier/telemetry.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace easched::frontier {
namespace {

std::string format_rate(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string format_ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string csv_escape(const std::string& s) {
  // Labels are caller-chosen; commas and quotes must survive the trip.
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out.push_back(c);
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      // Labels are caller-chosen: control characters must not leak into
      // the JSON string literal raw.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void CacheStatsLog::sample(const std::string& label, const SolveCache& cache) {
  sample(label, cache.stats());
}

void CacheStatsLog::sample(const std::string& label, const CacheStats& stats) {
  CacheStatsSample s;
  s.label = label;
  s.elapsed_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - epoch_)
                     .count();
  s.stats = stats;
  samples_.push_back(std::move(s));
}

void CacheStatsLog::write_csv(std::ostream& os) const {
  os << "label,elapsed_ms,hits,misses,store_hits,hit_rate,entries,bytes,"
        "evictions,spills,warm_seeds,interned_blobs\n";
  for (const auto& s : samples_) {
    os << csv_escape(s.label) << ',' << format_ms(s.elapsed_ms) << ',' << s.stats.hits
       << ',' << s.stats.misses << ',' << s.stats.store_hits << ','
       << format_rate(s.stats.hit_rate()) << ',' << s.stats.entries << ','
       << s.stats.bytes << ',' << s.stats.evictions << ',' << s.stats.spills << ','
       << s.stats.warm_seeds << ',' << s.stats.interned_blobs << '\n';
  }
}

void CacheStatsLog::write_json(std::ostream& os) const {
  os << "{\"samples\": [";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const auto& s = samples_[i];
    if (i != 0) os << ", ";
    os << "{\"label\": \"" << json_escape(s.label) << "\""
       << ", \"elapsed_ms\": " << format_ms(s.elapsed_ms)
       << ", \"hits\": " << s.stats.hits << ", \"misses\": " << s.stats.misses
       << ", \"store_hits\": " << s.stats.store_hits
       << ", \"hit_rate\": " << format_rate(s.stats.hit_rate())
       << ", \"entries\": " << s.stats.entries << ", \"bytes\": " << s.stats.bytes
       << ", \"evictions\": " << s.stats.evictions << ", \"spills\": " << s.stats.spills
       << ", \"warm_seeds\": " << s.stats.warm_seeds
       << ", \"interned_blobs\": " << s.stats.interned_blobs << "}";
  }
  os << "]}\n";
}

common::Status CacheStatsLog::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return common::Status::not_found("cannot open '" + path + "' for writing");
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    write_json(out);
  } else {
    write_csv(out);
  }
  if (!out.good()) return common::Status::internal("short write to '" + path + "'");
  return common::Status::ok();
}

}  // namespace easched::frontier
