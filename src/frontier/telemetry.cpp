#include "frontier/telemetry.hpp"

#include <ostream>
#include <string>

#include "obs/export.hpp"

namespace easched::frontier {
namespace {

// One column order, shared by both writers and every consumer of the
// series. Serialization itself (escaping, float format, the
// ".json"-vs-CSV dispatch) lives in obs::SampleTable so this log, the
// metrics registry and the bench exports all render numbers one way.
obs::SampleTable build_table(const std::vector<CacheStatsSample>& samples) {
  obs::SampleTable table({"label", "elapsed_ms", "hits", "misses", "store_hits",
                          "hit_rate", "entries", "bytes", "evictions", "spills",
                          "warm_seeds", "interned_blobs"});
  for (const auto& s : samples) {
    table.begin_row();
    table.add_label(s.label);
    table.add_value(obs::format_double(s.elapsed_ms));
    table.add_value(std::to_string(s.stats.hits));
    table.add_value(std::to_string(s.stats.misses));
    table.add_value(std::to_string(s.stats.store_hits));
    table.add_value(obs::format_double(s.stats.hit_rate()));
    table.add_value(std::to_string(s.stats.entries));
    table.add_value(std::to_string(s.stats.bytes));
    table.add_value(std::to_string(s.stats.evictions));
    table.add_value(std::to_string(s.stats.spills));
    table.add_value(std::to_string(s.stats.warm_seeds));
    table.add_value(std::to_string(s.stats.interned_blobs));
  }
  return table;
}

}  // namespace

void CacheStatsLog::sample(const std::string& label, const SolveCache& cache) {
  sample(label, cache.stats());
}

void CacheStatsLog::sample(const std::string& label, const CacheStats& stats) {
  CacheStatsSample s;
  s.label = label;
  s.elapsed_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - epoch_)
                     .count();
  s.stats = stats;
  samples_.push_back(std::move(s));
}

void CacheStatsLog::write_csv(std::ostream& os) const {
  build_table(samples_).write_csv(os);
}

void CacheStatsLog::write_json(std::ostream& os) const {
  build_table(samples_).write_json(os);
}

common::Status CacheStatsLog::write_file(const std::string& path) const {
  return build_table(samples_).write_file(path);
}

}  // namespace easched::frontier
