#include "frontier/analytics.hpp"

#include <algorithm>
#include <limits>

namespace easched::frontier {
namespace {

/// true when `a` is at least as good as `b` on the constraint objective.
bool constraint_leq(double a, double b, ConstraintAxis axis) {
  return axis == ConstraintAxis::kDeadline ? a <= b : a >= b;
}

}  // namespace

bool dominates(const FrontierPoint& a, const FrontierPoint& b, ConstraintAxis axis) {
  if (!constraint_leq(a.constraint, b.constraint, axis) || a.energy > b.energy) {
    return false;
  }
  return a.constraint != b.constraint || a.energy < b.energy;
}

std::vector<FrontierPoint> pareto_filter(std::vector<FrontierPoint> points,
                                         ConstraintAxis axis,
                                         std::vector<FrontierPoint>* dominated) {
  // Sweep from the best constraint end: a point survives iff its energy
  // strictly improves on everything already seen (ties and duplicates are
  // dominated). The sort is total, so the result is deterministic.
  const bool minimize_c = axis == ConstraintAxis::kDeadline;
  std::sort(points.begin(), points.end(),
            [minimize_c](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.constraint != b.constraint) {
                return minimize_c ? a.constraint < b.constraint
                                  : a.constraint > b.constraint;
              }
              return a.energy < b.energy;
            });
  std::vector<FrontierPoint> frontier;
  double best_energy = std::numeric_limits<double>::infinity();
  for (auto& p : points) {
    if (p.energy < best_energy) {
      best_energy = p.energy;
      frontier.push_back(std::move(p));
    } else if (dominated != nullptr) {
      dominated->push_back(std::move(p));
    }
  }
  if (!minimize_c) {  // the sweep ran from high to low constraint
    std::reverse(frontier.begin(), frontier.end());
    if (dominated != nullptr) {
      std::sort(dominated->begin(), dominated->end(),
                [](const FrontierPoint& a, const FrontierPoint& b) {
                  return a.constraint < b.constraint;
                });
    }
  }
  return frontier;
}

double area_under_curve(const std::vector<FrontierPoint>& frontier) {
  double area = 0.0;
  for (std::size_t i = 0; i + 1 < frontier.size(); ++i) {
    const double width = frontier[i + 1].constraint - frontier[i].constraint;
    area += width * 0.5 * (frontier[i].energy + frontier[i + 1].energy);
  }
  return area;
}

double hypervolume(const std::vector<FrontierPoint>& frontier, ConstraintAxis axis,
                   double ref_constraint, double ref_energy) {
  // Normalise to minimise/minimise: on the reliability axis mirror the
  // constraint, then the dominated region of the sorted staircase is a
  // union of disjoint rectangles, one per point, each spanning from the
  // point's constraint to its successor's (the last one to the reference).
  const double sign = axis == ConstraintAxis::kDeadline ? 1.0 : -1.0;
  std::vector<std::pair<double, double>> pts;  // (sign*constraint, energy)
  pts.reserve(frontier.size());
  for (const auto& p : frontier) pts.emplace_back(sign * p.constraint, p.energy);
  std::sort(pts.begin(), pts.end());
  const double ref_c = sign * ref_constraint;

  double volume = 0.0;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    best_energy = std::min(best_energy, pts[i].second);
    const double right = i + 1 < pts.size() ? std::min(pts[i + 1].first, ref_c) : ref_c;
    const double width = right - pts[i].first;
    const double height = ref_energy - best_energy;
    if (width > 0.0 && height > 0.0) volume += width * height;
  }
  return volume;
}

FrontierSummary summarize(const FrontierResult& result) {
  FrontierSummary s;
  s.points = result.points.size();
  if (result.points.empty()) return s;
  s.constraint_lo = result.points.front().constraint;
  s.constraint_hi = result.points.back().constraint;
  double worst_energy = 0.0;
  for (const auto& p : result.points) {
    s.energy.add(p.energy);
    worst_energy = std::max(worst_energy, p.energy);
  }
  s.auc = area_under_curve(result.points);
  const double worst_c = result.axis == ConstraintAxis::kDeadline ? s.constraint_hi
                                                                  : s.constraint_lo;
  s.hypervolume = hypervolume(result.points, result.axis, worst_c, worst_energy);
  return s;
}

}  // namespace easched::frontier
