#pragma once
// SolveCache — thread-safe memoization of api::solve.
//
// Frontier sweeps, benches and repeat traffic issue many *identical*
// requests: the same instance, speed model, solver and constraint point.
// Within one sweep only a couple of scalars (the effective deadline, or
// the reliability threshold frel) change between hundreds of probes, so
// the cache key is split to match:
//
//  * the *instance* part (kind, graph, mapping, speeds, reliability
//    statics) is serialised once into exact canonical bytes
//    (api::instance_bytes), condensed into a 128-bit api::InstanceDigest
//    and *interned*: the InstanceInterner resolves digest -> small id by
//    exact byte comparison, so two instances that collide on the digest
//    still receive distinct ids and a hit can never alias requests a
//    solver could tell apart;
//  * the *point* part is a POD CacheKey: the interned instance id, the
//    interned solver-name id, the IEEE bit patterns of the effective
//    deadline and frel, and every SolveOptions knob a solver may read.
//
// A sweep interns once (context_for) and then probes with O(1) keys —
// warm-path lookup cost is independent of the instance size. The key's
// hash is computed once at construction and reused for both shard
// selection and the per-shard map lookup, so a probe hashes exactly once.
//
// Storage is sharded; each shard holds its own mutex so parallel sweep
// workers rarely contend, and solver runs always happen outside any lock.
// Shards keep their entries on an intrusive LRU list: with a non-zero
// capacity the least-recently-used entry is evicted on insert (evictions
// are counted in CacheStats); the default capacity 0 means unbounded,
// preserving the grow-forever behaviour earlier releases had. Failures
// (infeasible point, unsupported instance) are cached too — they are as
// deterministic as successes and sweeps probe many of them.
//
// Caveat: the key includes the solver *name*, so the cache assumes the
// registry binding of a name never changes. Call clear() if you replace
// registry contents mid-process (the built-in registry never does).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/digest.hpp"
#include "api/registry.hpp"
#include "api/solver.hpp"
#include "common/status.hpp"

namespace easched::frontier {

/// Monotonic counters of cache effectiveness (entries is a snapshot).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
  std::size_t evictions = 0;  ///< LRU entries dropped by the size cap

  double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Exact canonical serialisation of everything `api::solve(request)`
/// depends on (api::instance_bytes + the per-point suffix). Two requests
/// share a fingerprint iff a solver cannot tell them apart. Kept for
/// exact-byte consumers (persistent spill, tests); the in-memory hot path
/// uses the interned CacheKey instead and never builds this per probe.
std::string canonical_fingerprint(const api::SolveRequest& request);

/// Resolves (digest, exact bytes) pairs to small dense ids. Two calls
/// return the same id iff the bytes are identical: digest collisions are
/// broken by comparing the stored byte strings, so ids are an *exact*
/// identity for instances. Thread-safe; ids stay valid for the interner's
/// lifetime.
class InstanceInterner {
 public:
  std::uint64_t intern(const api::InstanceDigest& digest, std::string bytes);
  std::size_t size() const;
  /// Drops every interned blob but keeps the id counter monotonic, so ids
  /// held by stale contexts can never collide with freshly interned ones.
  void clear();

 private:
  struct Blob {
    api::InstanceDigest digest;
    std::string bytes;
    std::uint64_t id = 0;
  };

  mutable std::mutex mutex_;
  /// digest.lo -> candidates; the full digest and bytes disambiguate.
  std::unordered_map<std::uint64_t, std::vector<Blob>> by_digest_;
  std::uint64_t next_id_ = 1;
};

/// POD per-point cache key. `instance` and `solver` are interner ids
/// (exact identities), the rest are bit patterns of the point scalars, so
/// operator== is exact and collision-free by construction; `hash` is
/// precomputed so a probe hashes once for both shard and map.
struct CacheKey {
  std::uint64_t instance = 0;
  std::uint64_t solver = 0;
  std::uint64_t deadline_bits = 0;
  std::uint64_t frel_bits = 0;  ///< 0 for BI-CRIT (kind is in the instance)
  std::int64_t approx_K = 0;
  std::uint64_t gap_tolerance_bits = 0;
  std::int64_t max_nodes = 0;
  std::int64_t dp_buckets = 0;
  std::int64_t fork_grid = 0;
  std::int64_t polish = 0;
  std::uint64_t hash = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) noexcept {
    return a.instance == b.instance && a.solver == b.solver &&
           a.deadline_bits == b.deadline_bits && a.frel_bits == b.frel_bits &&
           a.approx_K == b.approx_K && a.gap_tolerance_bits == b.gap_tolerance_bits &&
           a.max_nodes == b.max_nodes && a.dp_buckets == b.dp_buckets &&
           a.fork_grid == b.fork_grid && a.polish == b.polish;
  }
};

class SolveCache {
 public:
  /// Everything a sweep interns once and reuses per probe.
  struct InstanceContext {
    std::uint64_t instance = 0;
    std::uint64_t solver = 0;
  };

  /// `shards` is rounded up to a power of two (default suits up to the
  /// parallel_for thread cap). `max_entries` > 0 caps the entry count
  /// with per-shard LRU eviction: the cap is floor-split across shards
  /// (at least 1 per shard), so the resident total never exceeds
  /// `max_entries` when it is >= the shard count and degrades to one
  /// entry per shard below that. 0 keeps the cache unbounded. The cap
  /// bounds *entries*; interned instance blobs are only released by
  /// clear() (see ROADMAP).
  explicit SolveCache(std::size_t shards = 16, std::size_t max_entries = 0);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Stored entries are immutable and shared: a hit hands back the stored
  /// result without copying the schedule, which keeps the warm path O(1)
  /// in the instance size (a SolveReport copy is O(tasks)).
  using CachedResult = std::shared_ptr<const common::Result<api::SolveReport>>;

  /// Interns the instance bytes and the solver name of `request` —
  /// O(instance size), once per sweep, never per probe.
  InstanceContext context_for(const api::SolveRequest& request);

  /// Builds the POD key for one probe from an interned context — O(1) in
  /// the instance size. The hash is computed here, once.
  static CacheKey key_for(const InstanceContext& context,
                          const api::SolveRequest& request);

  /// Same key without materialising a request: callers that derive the
  /// point scalars directly (e.g. a reliability sweep, whose swept
  /// problem would otherwise be deep-copied per probe just to be keyed)
  /// pass them explicitly. `frel` is ignored for BI-CRIT.
  static CacheKey key_for(const InstanceContext& context, api::ProblemKind kind,
                          double effective_deadline, double frel,
                          const api::SolveOptions& options);

  /// Lookup-only probe: returns the stored result (counting a hit and
  /// touching the LRU order) or null without any accounting — the caller
  /// is expected to follow up with solve_shared, which records the miss.
  CachedResult try_get(const CacheKey& key, bool* cache_hit = nullptr);

  /// api::solve through the cache, keyed by a precomputed `key` (which
  /// must have been built via key_for from this cache's context for this
  /// request). On a miss the solver runs outside any lock and the result
  /// is stored first-write-wins (concurrent misses of the same key both
  /// solve; the stored entry is whichever landed first, and all callers
  /// return the stored entry). `cache_hit`, when non-null, reports
  /// whether this call was served from the cache. Never null. The pointee
  /// outlives eviction and clear() — holders keep it alive.
  CachedResult solve_shared(const api::SolveRequest& request, const CacheKey& key,
                            bool* cache_hit = nullptr);

  /// By-value convenience over solve_shared (copies the stored report).
  common::Result<api::SolveReport> solve(const api::SolveRequest& request,
                                         const CacheKey& key,
                                         bool* cache_hit = nullptr);

  /// Convenience overload: interns and keys internally (O(instance size)
  /// per call — fine for one-off traffic; sweeps use context_for +
  /// key_for to stay O(1) per probe).
  common::Result<api::SolveReport> solve(const api::SolveRequest& request,
                                         bool* cache_hit = nullptr);

  CacheStats stats() const;
  std::size_t size() const;
  /// Total entry cap (0 = unbounded) and the derived per-shard cap.
  std::size_t capacity() const noexcept { return capacity_; }
  void clear();

 private:
  struct Entry {
    CacheKey key;
    CachedResult result;
    Entry(const CacheKey& k, CachedResult r) : key(k), result(std::move(r)) {}
  };

  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used; eviction pops the back.
    std::list<Entry> lru;
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index;
  };

  std::size_t mask_ = 0;  ///< shard count - 1 (power of two)
  std::size_t capacity_ = 0;
  std::size_t shard_capacity_ = 0;  ///< 0 = unbounded
  std::unique_ptr<Shard[]> shards_;
  InstanceInterner instances_;
  mutable std::mutex solver_mutex_;
  std::unordered_map<std::string, std::uint64_t> solver_ids_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evictions_{0};
};

}  // namespace easched::frontier
