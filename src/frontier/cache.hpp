#pragma once
// SolveCache — thread-safe memoization of api::solve.
//
// Frontier sweeps, benches and repeat traffic issue many *identical*
// requests: the same instance, speed model, solver and constraint point.
// Within one sweep only a couple of scalars (the effective deadline, or
// the reliability threshold frel) change between hundreds of probes, so
// the cache key is split to match:
//
//  * the *instance* part (kind, graph, mapping, speeds, reliability
//    statics) is serialised once into exact canonical bytes
//    (api::instance_bytes), condensed into a 128-bit api::InstanceDigest
//    and *interned*: the InstanceInterner resolves digest -> small id by
//    exact byte comparison, so two instances that collide on the digest
//    still receive distinct ids and a hit can never alias requests a
//    solver could tell apart;
//  * the *point* part is a POD CacheKey: the interned instance id, the
//    interned solver-name id, the IEEE bit patterns of the effective
//    deadline and frel, and every SolveOptions knob a solver may read.
//
// A sweep interns once (context_for) and then probes with O(1) keys —
// warm-path lookup cost is independent of the instance size. The key's
// hash is computed once at construction and reused for both shard
// selection and the per-shard map lookup, so a probe hashes exactly once.
//
// Storage is sharded; each shard holds its own mutex so parallel sweep
// workers rarely contend, and solver runs always happen outside any lock.
// Shards keep their entries on an intrusive LRU list: with a non-zero
// `max_entries` (or `max_bytes`) capacity the least-recently-used entry
// is evicted on insert (evictions are counted in CacheStats); the default
// capacity 0 means unbounded, preserving the grow-forever behaviour
// earlier releases had. Eviction releases the entry's reference on its
// interned instance blob, so an instance's bytes are reclaimed once its
// last entry leaves the cache (`interned_blobs` in CacheStats tracks the
// live count). Failures (infeasible point, unsupported instance) are
// cached too — they are as deterministic as successes and sweeps probe
// many of them.
//
// Persistence: attach_store() connects a store::SolveStore. Depending on
// the store's options the cache then (a) pre-populates its shards from
// the log (`load_on_open`) so a restarted process replays previous
// traffic with zero solver calls, (b) appends every fresh solve
// (`write_through`), (c) persists LRU victims that were never written
// (`spill_on_evict`), and (d) on a full miss seeds the continuous
// solver's barrier from the nearest stored schedule of the same instance
// (`warm_start`, via api::SolveOptions::start_durations). Store-served
// misses count as `store_hits` and report cache_hit = true to callers.
//
// Caveat: the key includes the solver *name*, so the cache assumes the
// registry binding of a name never changes. Call clear() if you replace
// registry contents mid-process (the built-in registry never does).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/digest.hpp"
#include "api/registry.hpp"
#include "api/solver.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"

namespace easched::store {
class SolveStore;
struct PointKey;
}  // namespace easched::store

namespace easched::frontier {

/// Monotonic counters of cache effectiveness (entries/bytes/interned_blobs
/// are snapshots).
struct CacheStats {
  std::size_t hits = 0;        ///< served from an in-memory shard
  std::size_t misses = 0;      ///< solver actually ran
  std::size_t store_hits = 0;  ///< in-memory miss served by the attached store
  std::size_t entries = 0;
  std::size_t bytes = 0;          ///< approximate resident entry bytes
  std::size_t evictions = 0;      ///< LRU entries dropped by the size caps
  std::size_t spills = 0;         ///< evicted entries persisted to the store
  std::size_t warm_seeds = 0;     ///< solves seeded from a stored neighbour
  std::size_t interned_blobs = 0; ///< live instance blobs in the interner

  double hit_rate() const noexcept {
    const std::size_t total = hits + store_hits + misses;
    return total == 0
               ? 0.0
               : static_cast<double>(hits + store_hits) / static_cast<double>(total);
  }
};

/// Per-shard slice of CacheStats (shard_stats()): hot-shard skew is
/// invisible in the aggregate, so the observability layer exports these
/// under a shard label.
struct ShardCacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t spills = 0;
};

/// Exact canonical serialisation of everything `api::solve(request)`
/// depends on (api::instance_bytes + the per-point suffix). Two requests
/// share a fingerprint iff a solver cannot tell them apart. Kept for
/// exact-byte consumers (persistent spill, tests); the in-memory hot path
/// uses the interned CacheKey instead and never builds this per probe.
std::string canonical_fingerprint(const api::SolveRequest& request);

/// Resolves (digest, exact bytes) pairs to small dense ids. Two calls
/// return the same id iff the bytes are identical: digest collisions are
/// broken by comparing the stored byte strings, so ids are an *exact*
/// identity for instances. Blobs are reference-counted by cache entries
/// (add_ref/release): when the last entry of an instance is evicted its
/// bytes are reclaimed, and a context still holding the stale id simply
/// misses — never aliases. That non-aliasing guarantee is *structural*:
/// every id carries the interner's epoch in its top kEpochBits
/// (id = epoch << kSeqBits | per-epoch sequence). clear() starts a new
/// epoch and resets the sequence, so an id minted before a clear can
/// never be re-minted after it even though the counter restarts, and a
/// reclaimed-then-reinterned instance always reappears under a fresh
/// sequence number within the epoch. A long-lived sweep handle therefore
/// cannot alias a reused id no matter how the interner was recycled
/// underneath it. Thread-safe.
class InstanceInterner {
 public:
  /// Epoch / sequence split of an id. 24 epoch bits allow 16M clear()
  /// generations; 40 sequence bits allow 1T interns per generation.
  static constexpr unsigned kEpochBits = 24;
  static constexpr unsigned kSeqBits = 64 - kEpochBits;
  static constexpr std::uint64_t id_epoch(std::uint64_t id) noexcept {
    return id >> kSeqBits;
  }
  static constexpr std::uint64_t id_sequence(std::uint64_t id) noexcept {
    return id & ((std::uint64_t{1} << kSeqBits) - 1);
  }

  std::uint64_t intern(const api::InstanceDigest& digest, std::string bytes);
  std::size_t size() const;  ///< live (non-reclaimed) blobs
  std::uint64_t epoch() const;  ///< current generation (starts at 0)
  /// True while `id` resolves to a live blob: from the current epoch and
  /// not reclaimed. A stale context can revalidate cheaply instead of
  /// paying a miss per probe.
  bool live(std::uint64_t id) const;

  /// Digest and bytes of a live id; nullopt once the blob was reclaimed.
  struct BlobRef {
    api::InstanceDigest digest;
    std::shared_ptr<const std::string> bytes;
  };
  std::optional<BlobRef> find(std::uint64_t id) const;

  /// Entry bookkeeping: one add_ref per cache entry holding `id`, one
  /// release when that entry is evicted or erased. release() of the last
  /// reference reclaims the blob. Both tolerate already-reclaimed ids.
  void add_ref(std::uint64_t id);
  void release(std::uint64_t id);

  /// Drops every interned blob and starts a new epoch: future ids carry
  /// the bumped generation tag, so ids held by stale contexts can never
  /// collide with freshly interned ones even though the per-epoch
  /// sequence counter restarts.
  void clear();

 private:
  struct Blob {
    api::InstanceDigest digest;
    std::shared_ptr<const std::string> bytes;
    std::size_t refs = 0;
  };

  mutable common::Mutex mutex_;
  std::unordered_map<std::uint64_t, Blob> by_id_ EASCHED_GUARDED_BY(mutex_);
  /// digest.lo -> candidate ids; the full digest and bytes disambiguate.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> by_digest_
      EASCHED_GUARDED_BY(mutex_);
  std::uint64_t epoch_ EASCHED_GUARDED_BY(mutex_) = 0;
  /// Per-epoch; id 0 stays invalid.
  std::uint64_t next_seq_ EASCHED_GUARDED_BY(mutex_) = 1;
};

/// POD per-point cache key. `instance` and `solver` are interner ids
/// (exact identities), the rest are bit patterns of the point scalars, so
/// operator== is exact and collision-free by construction; `hash` is
/// precomputed so a probe hashes once for both shard and map.
struct CacheKey {
  std::uint64_t instance = 0;
  std::uint64_t solver = 0;
  std::uint64_t deadline_bits = 0;
  std::uint64_t frel_bits = 0;  ///< 0 for BI-CRIT (kind is in the instance)
  std::int64_t approx_K = 0;
  std::uint64_t gap_tolerance_bits = 0;
  std::int64_t max_nodes = 0;
  std::int64_t dp_buckets = 0;
  std::int64_t fork_grid = 0;
  std::int64_t polish = 0;
  std::uint64_t hash = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) noexcept {
    return a.instance == b.instance && a.solver == b.solver &&
           a.deadline_bits == b.deadline_bits && a.frel_bits == b.frel_bits &&
           a.approx_K == b.approx_K && a.gap_tolerance_bits == b.gap_tolerance_bits &&
           a.max_nodes == b.max_nodes && a.dp_buckets == b.dp_buckets &&
           a.fork_grid == b.fork_grid && a.polish == b.polish;
  }
};

class SolveCache {
 public:
  /// Everything a sweep interns once and reuses per probe.
  struct InstanceContext {
    std::uint64_t instance = 0;
    std::uint64_t solver = 0;
  };

  /// `shards` is rounded up to a power of two (default suits up to the
  /// parallel_for thread cap). `max_entries` > 0 caps the entry count
  /// with per-shard LRU eviction: the cap is floor-split across shards
  /// (at least 1 per shard), and a cap smaller than the requested shard
  /// count shrinks the shard count to the largest power of two the cap
  /// covers, so the resident total never exceeds `max_entries`.
  /// `max_bytes` > 0 additionally caps the approximate resident bytes
  /// (schedules scale with task count, so an entry cap alone does not
  /// bound memory); it is floor-split the same way and a shard always
  /// retains at least its most recent entry. 0 keeps the respective cap
  /// unbounded.
  explicit SolveCache(std::size_t shards = 16, std::size_t max_entries = 0,
                      std::size_t max_bytes = 0);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Stored entries are immutable and shared: a hit hands back the stored
  /// result without copying the schedule, which keeps the warm path O(1)
  /// in the instance size (a SolveReport copy is O(tasks)).
  using CachedResult = std::shared_ptr<const common::Result<api::SolveReport>>;

  /// Connects a persistent store (not owned; must outlive this cache or
  /// be detached with attach_store(nullptr)). With load_on_open set the
  /// store's live entries are interned and inserted immediately — after
  /// that, repeat traffic previously paid for by another process is
  /// served without a single solver call. The store's other policies
  /// (write_through / spill_on_evict / warm_start) apply to subsequent
  /// solve_shared traffic; see store/store.hpp.
  common::Status attach_store(store::SolveStore* store);
  store::SolveStore* store() const noexcept {
    return store_.load(std::memory_order_acquire);
  }

  /// Interns the instance bytes and the solver name of `request` —
  /// O(instance size), once per sweep, never per probe.
  InstanceContext context_for(const api::SolveRequest& request);

  /// Builds the POD key for one probe from an interned context — O(1) in
  /// the instance size. The hash is computed here, once.
  static CacheKey key_for(const InstanceContext& context,
                          const api::SolveRequest& request);

  /// Same key without materialising a request: callers that derive the
  /// point scalars directly (e.g. a reliability sweep, whose swept
  /// problem would otherwise be deep-copied per probe just to be keyed)
  /// pass them explicitly. `frel` is ignored for BI-CRIT.
  static CacheKey key_for(const InstanceContext& context, api::ProblemKind kind,
                          double effective_deadline, double frel,
                          const api::SolveOptions& options);

  /// Lookup-only probe: returns the stored result (counting a hit and
  /// touching the LRU order) or null without any accounting — the caller
  /// is expected to follow up with solve_shared, which records the miss.
  /// Never consults the store (the miss path of solve_shared does).
  CachedResult try_get(const CacheKey& key, bool* cache_hit = nullptr);

  /// api::solve through the cache, keyed by a precomputed `key` (which
  /// must have been built via key_for from this cache's context for this
  /// request). On an in-memory miss the attached store (if any) is
  /// consulted first — a store hit is inserted and served without running
  /// a solver. On a full miss the solver runs outside any lock (seeded
  /// from the nearest stored neighbour when the store enables warm
  /// starts) and the result is stored first-write-wins (concurrent misses
  /// of the same key both solve; the stored entry is whichever landed
  /// first, and all callers return the stored entry). `cache_hit`, when
  /// non-null, reports whether this call was served without running a
  /// solver. Never null. The pointee outlives eviction and clear() —
  /// holders keep it alive.
  CachedResult solve_shared(const api::SolveRequest& request, const CacheKey& key,
                            bool* cache_hit = nullptr);

  /// By-value convenience over solve_shared (copies the stored report).
  common::Result<api::SolveReport> solve(const api::SolveRequest& request,
                                         const CacheKey& key,
                                         bool* cache_hit = nullptr);

  /// Convenience overload: interns and keys internally (O(instance size)
  /// per call — fine for one-off traffic; sweeps use context_for +
  /// key_for to stay O(1) per probe).
  common::Result<api::SolveReport> solve(const api::SolveRequest& request,
                                         bool* cache_hit = nullptr);

  CacheStats stats() const;
  /// One entry per shard, in shard order. The hits/misses/evictions/
  /// spills counters partition the aggregate ones exactly (stats() sums
  /// these); entries/bytes are point-in-time snapshots.
  std::vector<ShardCacheStats> shard_stats() const;
  std::size_t shard_count() const noexcept { return mask_ + 1; }
  std::size_t size() const;
  /// Total entry cap (0 = unbounded) and the byte cap (0 = unbounded).
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t capacity_bytes() const noexcept { return capacity_bytes_; }
  void clear();

 private:
  struct Entry {
    CacheKey key;
    CachedResult result;
    std::size_t bytes = 0;       ///< approximate resident footprint
    std::uint8_t kind = 0;       ///< api::ProblemKind, for store spills
    bool persisted = false;      ///< already in the store; never re-spilled
    Entry(const CacheKey& k, CachedResult r) : key(k), result(std::move(r)) {}
  };

  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const noexcept {
      return static_cast<std::size_t>(k.hash);
    }
  };

  struct Shard {
    mutable common::Mutex mutex;
    /// Front = most recently used; eviction pops the back.
    std::list<Entry> lru EASCHED_GUARDED_BY(mutex);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index
        EASCHED_GUARDED_BY(mutex);
    std::size_t bytes EASCHED_GUARDED_BY(mutex) = 0;  ///< sum of entry footprints
    /// Per-shard effectiveness counters (summed by stats(), exported per
    /// shard by shard_stats()). Atomics, not guarded: the hit path bumps
    /// them under the shard mutex anyway, but keeping them lock-free lets
    /// shard_stats() read without serialising against live probes.
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> misses{0};
    std::atomic<std::size_t> evictions{0};
    std::atomic<std::size_t> spills{0};
  };

  /// An evicted entry waiting to be persisted. Everything the append
  /// needs is captured at eviction time (the shared_ptr keeps the blob
  /// bytes alive past their interner reclamation), so the file write can
  /// happen with no shard lock held.
  struct Spill {
    CacheKey key;
    std::uint8_t kind = 0;
    CachedResult result;
    api::InstanceDigest digest;
    std::shared_ptr<const std::string> bytes;
  };

  /// Inserts under the shard lock (caller must hold it), charging bytes,
  /// taking the blob reference and running the eviction loop. Returns the
  /// stored result (the racer's, if one beat us to the key). Victims the
  /// store should keep are appended to `spills` — the caller writes them
  /// via spill_now() *after* releasing the shard lock, so eviction never
  /// stalls concurrent lookups on file I/O.
  CachedResult insert_locked(Shard& shard, const CacheKey& key, std::uint8_t kind,
                             CachedResult result, bool persisted,
                             std::vector<Spill>& spills)
      EASCHED_REQUIRES(shard.mutex);
  /// Evicts LRU entries while either cap is exceeded, collecting
  /// never-persisted victims into `spills` when the store asks for that.
  void evict_locked(Shard& shard, std::vector<Spill>& spills)
      EASCHED_REQUIRES(shard.mutex);
  /// Appends collected victims of `shard` to the store. Takes no cache
  /// locks; call with none held.
  void spill_now(Shard& shard, const std::vector<Spill>& spills);
  /// Reverse of the solver-name interning (empty string for unknown ids).
  std::string solver_name_for(std::uint64_t id) const;

  std::size_t mask_ = 0;  ///< shard count - 1 (power of two)
  std::size_t capacity_ = 0;
  std::size_t shard_capacity_ = 0;  ///< 0 = unbounded
  std::size_t capacity_bytes_ = 0;
  std::size_t shard_capacity_bytes_ = 0;  ///< 0 = unbounded
  std::unique_ptr<Shard[]> shards_;
  InstanceInterner instances_;
  /// Atomic, not mutex-guarded: attach_store may legitimately race live
  /// solve traffic (a serving tier warming its store late), and readers
  /// snapshot the pointer once per operation. The store itself is
  /// internally synchronised; release/acquire orders its construction.
  std::atomic<store::SolveStore*> store_{nullptr};
  mutable common::Mutex solver_mutex_;
  std::unordered_map<std::string, std::uint64_t> solver_ids_
      EASCHED_GUARDED_BY(solver_mutex_);
  /// id - 1 -> name.
  std::vector<std::string> solver_names_ EASCHED_GUARDED_BY(solver_mutex_);
  /// Store-path counters stay global (the store is not sharded); the
  /// in-memory hit/miss/eviction/spill counters live per shard.
  std::atomic<std::size_t> store_hits_{0};
  std::atomic<std::size_t> warm_seeds_{0};
};

}  // namespace easched::frontier
