#pragma once
// SolveCache — thread-safe memoization of api::solve.
//
// Frontier sweeps, benches and repeat traffic issue many *identical*
// requests: the same instance, speed model, solver and constraint point.
// The cache keys each request by a canonical fingerprint of everything the
// solve outcome depends on — the full problem content (graph weights and
// edges, mapping orders, speed model, reliability parameters), the
// *effective* deadline after the slack policy, the solver name, and every
// SolveOptions knob a solver may read — so a hit is guaranteed to carry
// the bit-identical result the solver would have recomputed.
//
// The fingerprint is an exact serialisation, not just a hash: entries
// compare on the full key, so hash collisions can never return a wrong
// result. Storage is sharded; each shard holds its own mutex so parallel
// sweep workers rarely contend, and solver runs always happen outside any
// lock. Failures (infeasible point, unsupported instance) are cached too —
// they are as deterministic as successes and sweeps probe many of them.
//
// Caveat: the fingerprint includes the solver *name*, so the cache assumes
// the registry binding of a name never changes. Call clear() if you
// replace registry contents mid-process (the built-in registry never does).

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/registry.hpp"
#include "api/solver.hpp"
#include "common/status.hpp"

namespace easched::frontier {

/// Monotonic counters of cache effectiveness (entries is a snapshot).
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;

  double hit_rate() const noexcept {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Exact canonical serialisation of everything `api::solve(request)`
/// depends on. Two requests share a fingerprint iff a solver cannot tell
/// them apart (task names are excluded: no algorithm reads them).
std::string canonical_fingerprint(const api::SolveRequest& request);

class SolveCache {
 public:
  /// `shards` is rounded up to a power of two (default suits up to the
  /// parallel_for thread cap).
  explicit SolveCache(std::size_t shards = 16);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// api::solve through the cache. On a miss the solver runs outside any
  /// lock and the result is stored first-write-wins (concurrent misses of
  /// the same key both solve; the stored entry is whichever landed first,
  /// and all callers return the stored entry). `cache_hit`, when non-null,
  /// reports whether this call was served from the cache.
  common::Result<api::SolveReport> solve(const api::SolveRequest& request,
                                         bool* cache_hit = nullptr);

  CacheStats stats() const;
  std::size_t size() const;
  void clear();

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, common::Result<api::SolveReport>> entries;
  };

  Shard& shard_for(const std::string& key) const;

  std::size_t mask_;  ///< shard count - 1 (power of two)
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace easched::frontier
