#include "bicrit/continuous_dag.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "graph/analysis.hpp"

namespace easched::bicrit {

namespace {

using graph::Dag;
using graph::TaskId;
using opt::LinearConstraint;
using sched::Schedule;
using sched::TaskDecision;

std::vector<double> durations_at_speed(const Dag& dag, double f) {
  std::vector<double> d(static_cast<std::size_t>(dag.num_tasks()));
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    d[static_cast<std::size_t>(t)] = dag.weight(t) / f;
  }
  return d;
}

ContinuousSolution uniform_solution(const Dag& dag, double f, double deadline) {
  ContinuousSolution sol{Schedule(dag.num_tasks()), 0.0, {}, {}, 0.0, 0};
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    sol.schedule.at(t) = TaskDecision::single(f);
    sol.energy += model::execution_energy(dag.weight(t), f);
  }
  sol.durations = durations_at_speed(dag, f);
  (void)deadline;
  return sol;
}

}  // namespace

common::Result<ContinuousSolution> solve_continuous(const Dag& dag,
                                                    const sched::Mapping& mapping,
                                                    double deadline,
                                                    const model::SpeedModel& speeds,
                                                    const ContinuousOptions& options) {
  if (speeds.kind() != model::SpeedModelKind::kContinuous) {
    return common::Status::unsupported("solve_continuous needs the CONTINUOUS model");
  }
  EASCHED_CHECK(deadline > 0.0);
  if (auto st = mapping.validate(dag); !st.is_ok()) return st;
  const int n = dag.num_tasks();
  if (n == 0) return common::Status::invalid("empty graph");
  for (TaskId t = 0; t < n; ++t) {
    if (dag.weight(t) <= 0.0) {
      return common::Status::unsupported("solve_continuous requires positive task weights");
    }
  }

  const Dag aug = mapping.augmented_graph(dag);
  const double fmin = speeds.fmin();
  const double fmax = speeds.fmax();

  // Unit-speed makespan: makespan at speed f is M1/f.
  std::vector<double> unit(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) unit[static_cast<std::size_t>(t)] = dag.weight(t);
  const double m1 = graph::time_analysis(aug, unit, 0.0).makespan;
  const double makespan_fmax = m1 / fmax;
  const double makespan_fmin = m1 / fmin;

  if (makespan_fmax > deadline * (1.0 + 1e-9)) {
    return common::Status::infeasible("even all-fmax misses the deadline (makespan " +
                                      std::to_string(makespan_fmax) + " > " +
                                      std::to_string(deadline) + ")");
  }
  if (makespan_fmin <= deadline) {
    // Slowest admissible speed everywhere is feasible, hence optimal.
    auto sol = uniform_solution(dag, fmin, deadline);
    sol.start_times = graph::time_analysis(aug, sol.durations, deadline).asap;
    return sol;
  }
  if (makespan_fmax > deadline * (1.0 - 1e-9)) {
    // The feasible set has (numerically) empty interior: all-fmax ASAP.
    auto sol = uniform_solution(dag, fmax, deadline);
    sol.start_times = graph::time_analysis(aug, sol.durations, deadline).asap;
    return sol;
  }

  // ---- Build the convex program: x = [s_0..s_{n-1}, d_0..d_{n-1}] ---------
  opt::InversePowerObjective objective;
  for (TaskId t = 0; t < n; ++t) {
    const double w = dag.weight(t);
    objective.add_term(n + t, w * w * w);
  }
  std::vector<LinearConstraint> cons;
  cons.reserve(static_cast<std::size_t>(aug.num_edges() + 4 * n));
  for (TaskId u = 0; u < n; ++u) {
    for (TaskId v : aug.successors(u)) {
      // s_u + d_u - s_v <= 0
      cons.push_back(LinearConstraint{{{u, 1.0}, {n + u, 1.0}, {v, -1.0}}, 0.0});
    }
  }
  for (TaskId t = 0; t < n; ++t) {
    const double w = dag.weight(t);
    cons.push_back(LinearConstraint{{{t, 1.0}, {n + t, 1.0}}, deadline});  // s+d <= D
    cons.push_back(LinearConstraint{{{t, -1.0}}, 0.0});                    // s >= 0
    cons.push_back(LinearConstraint{{{n + t, 1.0}}, w / fmin});            // d <= w/fmin
    cons.push_back(LinearConstraint{{{n + t, -1.0}}, -w / fmax});          // d >= w/fmax
  }

  // ---- Strictly feasible start: a warm-start duration hint (clamped
  //      strictly inside the speed bounds) when it keeps slack, else a
  //      uniform speed strictly between the critical speed m1/D and fmax.
  //      Slack is spread by depth either way. ----------------------------
  std::vector<double> d0;
  std::optional<graph::TimeAnalysis> warm_ta;
  if (options.start_durations.size() == static_cast<std::size_t>(n)) {
    d0.resize(static_cast<std::size_t>(n));
    for (TaskId t = 0; t < n; ++t) {
      const double w = dag.weight(t);
      // Pull the hint strictly inside (w/fmax, w/fmin): converged warm
      // starts often sit exactly on a bound, where the barrier is
      // undefined.
      const double lo_d = (w / fmax) * (1.0 + 1e-9);
      const double hi_d = (w / fmin) * (1.0 - 1e-9);
      d0[static_cast<std::size_t>(t)] =
          std::clamp(options.start_durations[static_cast<std::size_t>(t)], lo_d, hi_d);
    }
    warm_ta = graph::time_analysis(aug, d0, deadline);
    if (warm_ta->makespan >= deadline) {
      d0.clear();  // hint lost its slack under the new deadline: cold start
      warm_ta.reset();
    }
  }
  if (d0.empty()) {
    const double f_crit = m1 / deadline;  // in (fmin, fmax) here
    const double f_start = 0.5 * (f_crit + fmax);
    d0 = durations_at_speed(dag, f_start);
  }
  const auto ta = warm_ta ? std::move(*warm_ta) : graph::time_analysis(aug, d0, deadline);
  const auto depth = graph::depth_levels(aug);
  const int max_depth = *std::max_element(depth.begin(), depth.end());
  const double slack = deadline - ta.makespan;  // > 0 by construction
  EASCHED_CHECK_MSG(slack > 0.0, "internal: start point has no slack");
  opt::Vector x0(static_cast<std::size_t>(2 * n));
  for (TaskId t = 0; t < n; ++t) {
    const double frac = static_cast<double>(depth[static_cast<std::size_t>(t)] + 1) /
                        static_cast<double>(max_depth + 2);
    x0[static_cast<std::size_t>(t)] = ta.asap[static_cast<std::size_t>(t)] + slack * frac;
    x0[static_cast<std::size_t>(n + t)] = d0[static_cast<std::size_t>(t)];
  }

  auto res = opt::minimize_barrier(objective, cons, x0, options.barrier);
  if (!res.status.is_ok() && res.x.empty()) return res.status;

  ContinuousSolution sol{Schedule(n), 0.0, {}, {}, res.gap_bound, res.newton_steps};
  sol.durations.resize(static_cast<std::size_t>(n));
  sol.start_times.resize(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    sol.start_times[static_cast<std::size_t>(t)] = res.x[static_cast<std::size_t>(t)];
    const double d = res.x[static_cast<std::size_t>(n + t)];
    sol.durations[static_cast<std::size_t>(t)] = d;
    const double f = std::clamp(dag.weight(t) / d, fmin, fmax);
    sol.schedule.at(t) = TaskDecision::single(f);
    sol.energy += model::execution_energy(dag.weight(t), f);
  }
  if (!res.status.is_ok()) {
    // Converged poorly but produced an iterate: surface the status.
    return res.status;
  }
  return sol;
}

}  // namespace easched::bicrit
