#include "bicrit/incremental.hpp"

#include <algorithm>
#include <cmath>

namespace easched::bicrit {

double incremental_ratio_bound(const model::SpeedModel& incremental, int K) {
  EASCHED_CHECK(K >= 1);
  EASCHED_CHECK(incremental.kind() == model::SpeedModelKind::kIncremental);
  const double a = 1.0 + incremental.delta() / incremental.fmin();
  const double b = 1.0 + 1.0 / static_cast<double>(K);
  return a * a * b * b;
}

common::Result<IncrementalApprox> solve_incremental_approx(const graph::Dag& dag,
                                                           const sched::Mapping& mapping,
                                                           double deadline,
                                                           const model::SpeedModel& incremental,
                                                           int K) {
  if (incremental.kind() != model::SpeedModelKind::kIncremental) {
    return common::Status::unsupported("needs the INCREMENTAL model");
  }
  EASCHED_CHECK(K >= 1);

  // Step 1: continuous relaxation to relative accuracy 1/K. Two passes:
  // a first solve estimates the energy scale, a second (only when needed)
  // tightens the barrier gap below E/(2K).
  const auto cont_model =
      model::SpeedModel::continuous(incremental.fmin(), incremental.fmax());
  ContinuousOptions opts;
  auto cont = solve_continuous(dag, mapping, deadline, cont_model, opts);
  if (!cont.is_ok()) return cont.status();
  if (cont.value().gap_bound > cont.value().energy / (2.0 * static_cast<double>(K))) {
    opts.barrier.gap_tolerance =
        std::max(1e-14, cont.value().energy / (2.0 * static_cast<double>(K)));
    // Warm-start the tightening re-solve from the first pass' iterate:
    // the barrier resumes next to the optimum instead of redoing the
    // whole path, which is the same previous-solution reuse the frontier
    // engine's resweep applies one level up.
    opts.start_durations = cont.value().durations;
    auto tighter = solve_continuous(dag, mapping, deadline, cont_model, opts);
    if (tighter.is_ok()) cont = std::move(tighter);
  }

  // Step 2: round every continuous speed UP to the next incremental level.
  IncrementalApprox out{sched::Schedule(dag.num_tasks()), 0.0, cont.value().energy,
                        incremental_ratio_bound(incremental, K), 0.0};
  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) {
    const double f_cont = cont.value().schedule.at(t).executions.front().speed;
    auto rounded = incremental.round_up(f_cont);
    if (!rounded.is_ok()) return rounded.status();
    out.schedule.at(t) = sched::TaskDecision::single(rounded.value());
    out.energy += model::execution_energy(dag.weight(t), rounded.value());
  }
  out.observed_ratio = out.continuous_energy > 0.0 ? out.energy / out.continuous_energy : 1.0;
  return out;
}

}  // namespace easched::bicrit
