#pragma once
// CONTINUOUS BI-CRIT on general mapped DAGs (claim C2).
//
// The paper: "We formulate the problem for general DAGs as a geometric
// programming problem for which efficient numerical schemes exist."
// Change of variables d_i = w_i / f_i turns the program into
//
//   minimize    sum_i  w_i^3 / d_i^2
//   subject to  s_u + d_u <= s_v          for every edge of the augmented
//                                         graph (DAG + processor orders)
//               s_i + d_i <= D,  s_i >= 0
//               w_i/fmax <= d_i <= w_i/fmin
//
// — a convex program with linear constraints, solved by the log-barrier
// interior-point method in opt/barrier.hpp. Two boundary cases bypass the
// barrier (which needs a strictly feasible interior):
//   * makespan at fmin <= D  =>  all-fmin is optimal (energy monotone in f);
//   * makespan at fmax == D (within tolerance) => all-fmax ASAP is the only
//     feasible point.

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/speed_model.hpp"
#include "opt/barrier.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"

namespace easched::bicrit {

struct ContinuousOptions {
  opt::BarrierOptions barrier;
  /// Optional warm start: per-task durations of a neighbouring solution
  /// (e.g. the previous iterate of a tightening re-solve, or a nearby
  /// sweep point). When the size matches the task count they are clamped
  /// strictly inside the speed bounds and used as the barrier's starting
  /// point if the clamped point still has deadline slack; otherwise the
  /// standard cold start is used. Purely a performance hint: the barrier
  /// converges to the same optimum either way (to solver tolerance), and
  /// a given (instance, hint) pair is deterministic.
  std::vector<double> start_durations;
};

struct ContinuousSolution {
  sched::Schedule schedule;
  double energy = 0.0;
  std::vector<double> durations;    ///< optimal d_i
  std::vector<double> start_times;  ///< feasible start times s_i
  double gap_bound = 0.0;           ///< certified optimality gap (0 for boundary cases)
  int newton_steps = 0;
};

/// Minimal-energy continuous speeds for (dag, mapping, deadline).
/// kInfeasible when even all-fmax misses the deadline.
common::Result<ContinuousSolution> solve_continuous(const graph::Dag& dag,
                                                    const sched::Mapping& mapping,
                                                    double deadline,
                                                    const model::SpeedModel& speeds,
                                                    const ContinuousOptions& options = {});

}  // namespace easched::bicrit
