#include "bicrit/vdd_lp.hpp"

#include <algorithm>
#include <cmath>

#include "lp/simplex.hpp"

namespace easched::bicrit {

namespace {

using graph::Dag;
using graph::TaskId;
using sched::Schedule;

}  // namespace

common::Result<VddSolution> solve_vdd_lp(const Dag& dag, const sched::Mapping& mapping,
                                         double deadline, const model::SpeedModel& speeds) {
  if (speeds.kind() != model::SpeedModelKind::kVddHopping) {
    return common::Status::unsupported("solve_vdd_lp needs the VDD-HOPPING model");
  }
  EASCHED_CHECK(deadline > 0.0);
  if (auto st = mapping.validate(dag); !st.is_ok()) return st;

  const int n = dag.num_tasks();
  const auto& levels = speeds.levels();
  const int m = static_cast<int>(levels.size());
  const Dag aug = mapping.augmented_graph(dag);

  lp::LpModel model;
  // alpha(i,s) and start(i) variable ids.
  std::vector<int> alpha(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  std::vector<int> start(static_cast<std::size_t>(n));
  for (TaskId i = 0; i < n; ++i) {
    for (int s = 0; s < m; ++s) {
      const double f = levels[static_cast<std::size_t>(s)];
      alpha[static_cast<std::size_t>(i * m + s)] =
          model.add_variable(0.0, lp::kInf, f * f * f,
                             "a" + std::to_string(i) + "_" + std::to_string(s));
    }
    start[static_cast<std::size_t>(i)] =
        model.add_variable(0.0, lp::kInf, 0.0, "s" + std::to_string(i));
  }
  // Work completion: sum_s f_s alpha_{i,s} = w_i.
  for (TaskId i = 0; i < n; ++i) {
    std::vector<lp::LinearTerm> terms;
    for (int s = 0; s < m; ++s) {
      terms.push_back({alpha[static_cast<std::size_t>(i * m + s)],
                       levels[static_cast<std::size_t>(s)]});
    }
    model.add_constraint(std::move(terms), lp::Sense::kEqual, dag.weight(i));
  }
  // Precedence on the augmented graph: s_u + sum_s alpha_u,s - s_v <= 0.
  for (TaskId u = 0; u < n; ++u) {
    for (TaskId v : aug.successors(u)) {
      std::vector<lp::LinearTerm> terms;
      terms.push_back({start[static_cast<std::size_t>(u)], 1.0});
      for (int s = 0; s < m; ++s) {
        terms.push_back({alpha[static_cast<std::size_t>(u * m + s)], 1.0});
      }
      terms.push_back({start[static_cast<std::size_t>(v)], -1.0});
      model.add_constraint(std::move(terms), lp::Sense::kLessEqual, 0.0);
    }
  }
  // Deadline: s_i + duration_i <= D.
  for (TaskId i = 0; i < n; ++i) {
    std::vector<lp::LinearTerm> terms;
    terms.push_back({start[static_cast<std::size_t>(i)], 1.0});
    for (int s = 0; s < m; ++s) {
      terms.push_back({alpha[static_cast<std::size_t>(i * m + s)], 1.0});
    }
    model.add_constraint(std::move(terms), lp::Sense::kLessEqual, deadline);
  }

  const auto lp_sol = lp::solve(model);
  if (lp_sol.status == lp::LpStatus::kInfeasible) {
    return common::Status::infeasible("VDD LP infeasible: deadline too tight");
  }
  if (!lp_sol.optimal()) {
    return common::Status::not_converged(std::string("VDD LP: ") +
                                         lp::to_string(lp_sol.status));
  }

  VddSolution out{Schedule(n), lp_sol.objective, lp_sol.iterations, 0, true};
  constexpr double kSupportTol = 1e-7;
  for (TaskId i = 0; i < n; ++i) {
    std::vector<model::SpeedInterval> profile;
    int support = 0;
    int first_level = -1, last_level = -1;
    for (int s = 0; s < m; ++s) {
      const double a = lp_sol.x[static_cast<std::size_t>(
          alpha[static_cast<std::size_t>(i * m + s)])];
      if (a > kSupportTol) {
        ++support;
        if (first_level < 0) first_level = s;
        last_level = s;
      }
      if (a > 1e-12) {
        profile.push_back(model::SpeedInterval{levels[static_cast<std::size_t>(s)], a});
      }
    }
    if (profile.empty() && dag.weight(i) == 0.0) {
      profile.push_back(model::SpeedInterval{levels.back(), 0.0});
    }
    out.max_speeds_per_task = std::max(out.max_speeds_per_task, support);
    if (support > 0 && last_level - first_level + 1 != support) out.speeds_adjacent = false;
    out.schedule.at(i) = sched::TaskDecision{{sched::Execution::vdd(std::move(profile))}};
  }
  return out;
}

common::Result<VddSolution> vdd_from_continuous(const Dag& dag,
                                                const std::vector<double>& durations,
                                                const model::SpeedModel& speeds) {
  if (speeds.kind() != model::SpeedModelKind::kVddHopping) {
    return common::Status::unsupported("vdd_from_continuous needs the VDD-HOPPING model");
  }
  const int n = dag.num_tasks();
  EASCHED_CHECK(static_cast<int>(durations.size()) == n);

  VddSolution out{Schedule(n), 0.0, 0, 0, true};
  for (TaskId i = 0; i < n; ++i) {
    const double w = dag.weight(i);
    const double d = durations[static_cast<std::size_t>(i)];
    if (w == 0.0) {
      out.schedule.at(i) = sched::TaskDecision{
          {sched::Execution::vdd({model::SpeedInterval{speeds.levels().back(), 0.0}})}};
      continue;
    }
    EASCHED_CHECK_MSG(d > 0.0, "vdd_from_continuous: non-positive duration");
    double f = w / d;
    if (f > speeds.fmax() * (1.0 + 1e-9)) {
      return common::Status::infeasible("continuous speed above the fastest level");
    }
    if (f < speeds.fmin()) {
      // Slower than the slowest level: run at fmin and finish early
      // (the shorter duration can only help the makespan).
      f = speeds.fmin();
    }
    const double dur = std::min(d, w / f);
    const auto [lo, hi] = speeds.bracket(f);
    std::vector<model::SpeedInterval> profile;
    if (hi - lo < 1e-12) {
      profile.push_back(model::SpeedInterval{lo, w / lo});
    } else {
      const auto [a_lo, a_hi] = model::two_speed_mix(w, dur, lo, hi);
      if (a_lo > 0.0) profile.push_back(model::SpeedInterval{lo, a_lo});
      if (a_hi > 0.0) profile.push_back(model::SpeedInterval{hi, a_hi});
    }
    out.max_speeds_per_task =
        std::max(out.max_speeds_per_task, static_cast<int>(profile.size()));
    out.energy += model::vdd_energy(profile);
    out.schedule.at(i) = sched::TaskDecision{{sched::Execution::vdd(std::move(profile))}};
  }
  return out;
}

}  // namespace easched::bicrit
