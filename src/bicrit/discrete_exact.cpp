#include "bicrit/discrete_exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "bicrit/continuous_dag.hpp"
#include "graph/analysis.hpp"

namespace easched::bicrit {

namespace {

using graph::Dag;
using graph::TaskId;
using sched::Schedule;
using sched::TaskDecision;

common::Status require_discrete_kind(const model::SpeedModel& speeds) {
  if (speeds.kind() != model::SpeedModelKind::kDiscrete &&
      speeds.kind() != model::SpeedModelKind::kIncremental) {
    return common::Status::unsupported("solver needs the DISCRETE or INCREMENTAL model");
  }
  return common::Status::ok();
}

double makespan_of_durations(const Dag& aug, const std::vector<double>& durations) {
  return graph::time_analysis(aug, durations, 0.0).makespan;
}

// Depth-first exact search over per-task levels.
class BnbSearch {
 public:
  BnbSearch(const Dag& dag, const Dag& aug, double deadline,
            const std::vector<double>& levels, const BnbOptions& options)
      : dag_(dag), aug_(aug), deadline_(deadline), levels_(levels), opt_(options) {
    const int n = dag_.num_tasks();
    assignment_.assign(static_cast<std::size_t>(n), -1);
    best_assignment_.assign(static_cast<std::size_t>(n), -1);
    durations_.assign(static_cast<std::size_t>(n), 0.0);
    // Start with every task at fmax: a lower bound on everyone's duration.
    for (TaskId t = 0; t < n; ++t) {
      durations_[static_cast<std::size_t>(t)] = dag_.weight(t) / levels_.back();
    }
    // Energy of the remaining tasks if they could all use the slowest level.
    remaining_floor_.assign(static_cast<std::size_t>(n) + 1, 0.0);
    for (int t = n - 1; t >= 0; --t) {
      remaining_floor_[static_cast<std::size_t>(t)] =
          remaining_floor_[static_cast<std::size_t>(t) + 1] +
          model::execution_energy(dag_.weight(t), levels_.front());
    }
  }

  bool run() {
    dfs(0, 0.0);
    return best_energy_ < std::numeric_limits<double>::infinity();
  }

  double best_energy() const { return best_energy_; }
  const std::vector<int>& best_assignment() const { return best_assignment_; }
  long long nodes() const { return nodes_; }
  bool aborted() const { return aborted_; }

 private:
  void dfs(int task, double energy_so_far) {
    if (aborted_) return;
    if (++nodes_ > opt_.max_nodes) {
      aborted_ = true;
      return;
    }
    const int n = dag_.num_tasks();
    if (task == n) {
      if (energy_so_far < best_energy_) {
        best_energy_ = energy_so_far;
        best_assignment_ = assignment_;
      }
      return;
    }
    // Try slow levels first: they are the energy-greedy choices, which
    // tightens the incumbent early and strengthens the energy bound.
    for (std::size_t s = 0; s < levels_.size(); ++s) {
      const double f = levels_[s];
      assignment_[static_cast<std::size_t>(task)] = static_cast<int>(s);
      const double saved = durations_[static_cast<std::size_t>(task)];
      durations_[static_cast<std::size_t>(task)] = dag_.weight(task) / f;
      const double e = energy_so_far + model::execution_energy(dag_.weight(task), f);
      // Feasibility prune: unassigned tasks already sit at fmax durations,
      // so this makespan is a valid lower bound on any completion.
      const bool feasible = makespan_of_durations(aug_, durations_) <=
                            deadline_ * (1.0 + 1e-12);
      // Energy prune: remaining tasks cannot do better than all-slowest.
      bool explore = feasible;
      if (explore && opt_.use_energy_bound) {
        const double energy_lb = e + remaining_floor_[static_cast<std::size_t>(task) + 1];
        if (energy_lb >= best_energy_) explore = false;
      }
      if (explore) dfs(task + 1, e);
      durations_[static_cast<std::size_t>(task)] = saved;
    }
    assignment_[static_cast<std::size_t>(task)] = -1;
  }

  const Dag& dag_;
  const Dag& aug_;
  double deadline_;
  const std::vector<double>& levels_;
  BnbOptions opt_;
  std::vector<int> assignment_, best_assignment_;
  std::vector<double> durations_;
  std::vector<double> remaining_floor_;
  double best_energy_ = std::numeric_limits<double>::infinity();
  long long nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

common::Result<DiscreteSolution> solve_discrete_bnb(const Dag& dag,
                                                    const sched::Mapping& mapping,
                                                    double deadline,
                                                    const model::SpeedModel& speeds,
                                                    const BnbOptions& options) {
  if (auto st = require_discrete_kind(speeds); !st.is_ok()) return st;
  EASCHED_CHECK(deadline > 0.0);
  if (auto st = mapping.validate(dag); !st.is_ok()) return st;

  const Dag aug = mapping.augmented_graph(dag);
  // Quick infeasibility check at fmax.
  {
    std::vector<double> d(static_cast<std::size_t>(dag.num_tasks()));
    for (TaskId t = 0; t < dag.num_tasks(); ++t) {
      d[static_cast<std::size_t>(t)] = dag.weight(t) / speeds.fmax();
    }
    if (makespan_of_durations(aug, d) > deadline * (1.0 + 1e-12)) {
      return common::Status::infeasible("even all-fmax misses the deadline");
    }
  }

  BnbSearch search(dag, aug, deadline, speeds.levels(), options);
  const bool found = search.run();
  if (search.aborted()) {
    return common::Status::not_converged("branch & bound hit the node cap");
  }
  EASCHED_CHECK_MSG(found, "internal: feasible instance but no incumbent");

  DiscreteSolution out{Schedule(dag.num_tasks()), search.best_energy(), search.nodes(), true};
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    const int s = search.best_assignment()[static_cast<std::size_t>(t)];
    out.schedule.at(t) = TaskDecision::single(speeds.levels()[static_cast<std::size_t>(s)]);
  }
  return out;
}

common::Result<DiscreteSolution> solve_chain_discrete_dp(const std::vector<double>& weights,
                                                         double deadline,
                                                         const model::SpeedModel& speeds,
                                                         int buckets) {
  if (auto st = require_discrete_kind(speeds); !st.is_ok()) return st;
  EASCHED_CHECK(deadline > 0.0);
  EASCHED_CHECK(buckets >= 1);
  const int n = static_cast<int>(weights.size());
  const auto& levels = speeds.levels();
  const double bucket_len = deadline / static_cast<double>(buckets);

  // dp[b]: min energy to finish the prefix within b buckets of time.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(static_cast<std::size_t>(buckets) + 1, kInf);
  std::vector<std::vector<int>> choice(
      static_cast<std::size_t>(n), std::vector<int>(static_cast<std::size_t>(buckets) + 1, -1));
  dp[0] = 0.0;
  std::vector<double> next(static_cast<std::size_t>(buckets) + 1, kInf);
  for (int i = 0; i < n; ++i) {
    std::fill(next.begin(), next.end(), kInf);
    for (std::size_t s = 0; s < levels.size(); ++s) {
      const double dur = weights[static_cast<std::size_t>(i)] / levels[s];
      const auto cost_buckets =
          static_cast<long long>(std::ceil(dur / bucket_len - 1e-12));  // round UP: feasible
      if (cost_buckets > buckets) continue;
      const double e = model::execution_energy(weights[static_cast<std::size_t>(i)], levels[s]);
      for (long long b = 0; b + cost_buckets <= buckets; ++b) {
        if (dp[static_cast<std::size_t>(b)] == kInf) continue;
        const auto nb = static_cast<std::size_t>(b + cost_buckets);
        const double cand = dp[static_cast<std::size_t>(b)] + e;
        if (cand < next[nb]) {
          next[nb] = cand;
          choice[static_cast<std::size_t>(i)][nb] = static_cast<int>(s);
        }
      }
    }
    // Prefix-min over time: finishing earlier is never worse.
    for (std::size_t b = 1; b < next.size(); ++b) {
      if (next[b - 1] < next[b]) {
        next[b] = next[b - 1];
        choice[static_cast<std::size_t>(i)][b] = -2;  // marker: carry from b-1
      }
    }
    dp.swap(next);
  }
  if (dp[static_cast<std::size_t>(buckets)] == kInf) {
    return common::Status::infeasible("chain DP: no level assignment meets the deadline");
  }

  // Reconstruct choices backwards.
  DiscreteSolution out{Schedule(n), dp[static_cast<std::size_t>(buckets)], 0, false};
  long long b = buckets;
  for (int i = n - 1; i >= 0; --i) {
    while (choice[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)] == -2) --b;
    const int s = choice[static_cast<std::size_t>(i)][static_cast<std::size_t>(b)];
    EASCHED_CHECK_MSG(s >= 0, "chain DP: reconstruction failed");
    out.schedule.at(i) = TaskDecision::single(levels[static_cast<std::size_t>(s)]);
    const double dur = weights[static_cast<std::size_t>(i)] / levels[static_cast<std::size_t>(s)];
    b -= static_cast<long long>(std::ceil(dur / bucket_len - 1e-12));
  }
  return out;
}

common::Result<DiscreteSolution> solve_discrete_greedy(const Dag& dag,
                                                       const sched::Mapping& mapping,
                                                       double deadline,
                                                       const model::SpeedModel& speeds) {
  if (auto st = require_discrete_kind(speeds); !st.is_ok()) return st;
  const auto& levels = speeds.levels();
  const auto cont_model = model::SpeedModel::continuous(levels.front(), levels.back());
  auto cont = solve_continuous(dag, mapping, deadline, cont_model);
  if (!cont.is_ok()) return cont.status();

  const int n = dag.num_tasks();
  const Dag aug = mapping.augmented_graph(dag);
  std::vector<int> level_of(static_cast<std::size_t>(n), 0);
  std::vector<double> durations(static_cast<std::size_t>(n), 0.0);
  for (TaskId t = 0; t < n; ++t) {
    const double f_cont = cont.value().schedule.at(t).executions.front().speed;
    // Round up to the next admissible level (feasible: durations shrink).
    int s = 0;
    while (levels[static_cast<std::size_t>(s)] < f_cont * (1.0 - 1e-12) &&
           s + 1 < static_cast<int>(levels.size())) {
      ++s;
    }
    level_of[static_cast<std::size_t>(t)] = s;
    durations[static_cast<std::size_t>(t)] =
        dag.weight(t) / levels[static_cast<std::size_t>(s)];
  }

  // Greedy reclaim: repeatedly apply the single level-lowering with the best
  // energy gain that keeps the schedule feasible.
  long long moves = 0;
  for (;;) {
    int best_task = -1;
    double best_gain = 0.0;
    for (TaskId t = 0; t < n; ++t) {
      const int s = level_of[static_cast<std::size_t>(t)];
      if (s == 0) continue;
      const double f_hi = levels[static_cast<std::size_t>(s)];
      const double f_lo = levels[static_cast<std::size_t>(s) - 1];
      const double gain = model::execution_energy(dag.weight(t), f_hi) -
                          model::execution_energy(dag.weight(t), f_lo);
      if (gain <= best_gain) continue;
      const double saved = durations[static_cast<std::size_t>(t)];
      durations[static_cast<std::size_t>(t)] = dag.weight(t) / f_lo;
      const bool ok = makespan_of_durations(aug, durations) <= deadline * (1.0 + 1e-12);
      durations[static_cast<std::size_t>(t)] = saved;
      if (ok) {
        best_gain = gain;
        best_task = t;
      }
    }
    if (best_task < 0) break;
    ++moves;
    --level_of[static_cast<std::size_t>(best_task)];
    durations[static_cast<std::size_t>(best_task)] =
        dag.weight(best_task) /
        levels[static_cast<std::size_t>(level_of[static_cast<std::size_t>(best_task)])];
  }

  DiscreteSolution out{Schedule(n), 0.0, moves, false};
  for (TaskId t = 0; t < n; ++t) {
    const double f = levels[static_cast<std::size_t>(level_of[static_cast<std::size_t>(t)])];
    out.schedule.at(t) = TaskDecision::single(f);
    out.energy += model::execution_energy(dag.weight(t), f);
  }
  return out;
}

}  // namespace easched::bicrit
