#pragma once
// DISCRETE / INCREMENTAL BI-CRIT exact solvers and heuristics (claim C9).
//
// The paper: "With the INCREMENTAL model (and hence the DISCRETE model),
// we show that this problem is NP-complete." Choosing one level per task
// to minimise sum w_i f_i^2 under the deadline is a multiple-choice
// knapsack — already NP-hard on a single-processor chain. Accordingly:
//
//  * solve_discrete_bnb        — exact branch & bound (energy lower bound
//                                + fmax-completion feasibility pruning);
//                                also runs as plain exhaustive search when
//                                bounding is disabled (reference oracle).
//  * solve_chain_discrete_dp   — pseudo-polynomial DP for chains over a
//                                discretised time budget (durations are
//                                rounded UP, so results are always
//                                feasible; exact as buckets -> inf).
//  * solve_discrete_greedy     — round the continuous relaxation up to the
//                                next level, then greedy "reclaim" passes
//                                that lower one task's level while the
//                                deadline still holds.

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/speed_model.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"

namespace easched::bicrit {

struct DiscreteSolution {
  sched::Schedule schedule;
  double energy = 0.0;
  long long nodes_explored = 0;  ///< search nodes (B&B / exhaustive)
  bool proven_optimal = false;
};

struct BnbOptions {
  long long max_nodes = 50'000'000;  ///< abort with kNotConverged beyond this
  bool use_energy_bound = true;      ///< false => plain exhaustive search
};

/// Exact optimum over per-task speed levels; kInfeasible when even all-fmax
/// misses the deadline. Works for DISCRETE and INCREMENTAL models.
common::Result<DiscreteSolution> solve_discrete_bnb(const graph::Dag& dag,
                                                    const sched::Mapping& mapping,
                                                    double deadline,
                                                    const model::SpeedModel& speeds,
                                                    const BnbOptions& options = {});

/// Pseudo-polynomial DP for a single-processor chain: minimises energy with
/// task durations rounded up to deadline/buckets granularity. Always
/// feasible; optimal for the rounded instance.
common::Result<DiscreteSolution> solve_chain_discrete_dp(const std::vector<double>& weights,
                                                         double deadline,
                                                         const model::SpeedModel& speeds,
                                                         int buckets = 20000);

/// Continuous-relaxation round-up followed by greedy reclaim passes.
common::Result<DiscreteSolution> solve_discrete_greedy(const graph::Dag& dag,
                                                       const sched::Mapping& mapping,
                                                       double deadline,
                                                       const model::SpeedModel& speeds);

}  // namespace easched::bicrit
