#pragma once
// Closed-form CONTINUOUS BI-CRIT solvers for special graph structures
// (claim C1, paper section III).
//
// The paper gives the fork theorem explicitly:
//   f0 = ((sum wi^3)^(1/3) + w0) / D,   fi = f0 * wi / (sum wi^3)^(1/3)
//   E  = ((sum wi^3)^(1/3) + w0)^3 / D^2
// with an fmax fallback (source at fmax, children share the remaining window), and
// states that trees and series-parallel graphs admit similar closed forms.
// Those compose over the SP decomposition tree via the equivalent weight
//   series:   W = W1 + W2
//   parallel: W = (W1^3 + W2^3)^(1/3)
// after which every leaf task runs at (its weight)/(its time budget) and
// the total energy is  W_root^3 / D^2.
//
// All solvers here assume the graph structure itself is the binding
// constraint (enough processors: each parallel branch on its own
// processor), which is the setting of the paper's theorem. Arbitrary
// mappings are handled by the general solver in continuous_dag.hpp.

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "graph/series_parallel.hpp"
#include "model/speed_model.hpp"
#include "sched/schedule.hpp"

namespace easched::bicrit {

struct ClosedFormResult {
  sched::Schedule schedule;
  double energy = 0.0;
  bool clamped = false;  ///< some speed hit fmin/fmax and the fallback ran
};

/// Chain (any linear chain graph): every task at speed sum(w)/D.
/// fmin: clamps up (still optimal — speeds are at their admissible minimum).
/// fmax: infeasible when sum(w)/D > fmax.
common::Result<ClosedFormResult> solve_chain(const graph::Dag& dag, double deadline,
                                             const model::SpeedModel& speeds);

/// Fork theorem of the paper, including the fmax fallback. The fmin bound
/// is handled by a 1-D convex search over the source time (the energy
/// profile is convex in the source completion time), which coincides with
/// the closed form whenever no clamping occurs.
common::Result<ClosedFormResult> solve_fork(const graph::Dag& dag, double deadline,
                                            const model::SpeedModel& speeds);

/// Equivalent weight of the subtree rooted at `node`.
double equivalent_weight(const graph::SpTree& tree, const graph::Dag& dag, int node);

/// Series-parallel / tree solver via SP decomposition (auto-recognition).
/// kUnsupported when the graph is not SP, or when the unclamped optimum
/// needs a speed above fmax (use the continuous DAG solver then).
/// Speeds below fmin are clamped up; the result stays feasible and the
/// `clamped` flag is set (for chains this clamping is provably optimal).
common::Result<ClosedFormResult> solve_series_parallel(const graph::Dag& dag, double deadline,
                                                       const model::SpeedModel& speeds);

/// Same, with a caller-provided decomposition tree.
common::Result<ClosedFormResult> solve_sp_tree(const graph::Dag& dag,
                                               const graph::SpTree& tree, double deadline,
                                               const model::SpeedModel& speeds);

}  // namespace easched::bicrit
