#pragma once
// INCREMENTAL BI-CRIT approximation algorithm (claim C9).
//
// The paper: "with the INCREMENTAL model, we can approximate the solution
// within a factor (1 + delta/fmin)^2 (1 + 1/K)^2, in a time polynomial in
// the size of the instance and in K."
//
// The scheme implemented here mirrors that guarantee:
//  1. solve the CONTINUOUS relaxation on [fmin, fmax] to relative accuracy
//     1/K (the barrier method's certified gap gives the (1+1/K) factor on
//     top of the true continuous optimum, which lower-bounds the
//     INCREMENTAL optimum);
//  2. round every speed UP to the next admissible incremental level
//     f = fmin + i*delta. Durations shrink, so feasibility is preserved,
//     and per-task energy grows by at most ((f + delta)/f)^2
//     <= (1 + delta/fmin)^2.
// Hence  E_approx <= (1+delta/fmin)^2 (1+1/K) E*_cont
//                 <= (1+delta/fmin)^2 (1+1/K)^2 E*_incremental.

#include "bicrit/continuous_dag.hpp"
#include "common/status.hpp"
#include "model/speed_model.hpp"

namespace easched::bicrit {

/// The proven worst-case ratio (1 + delta/fmin)^2 * (1 + 1/K)^2.
double incremental_ratio_bound(const model::SpeedModel& incremental, int K);

struct IncrementalApprox {
  sched::Schedule schedule;
  double energy = 0.0;
  double continuous_energy = 0.0;  ///< lower bound on the incremental optimum
  double ratio_bound = 0.0;        ///< (1+delta/fmin)^2 (1+1/K)^2
  double observed_ratio = 0.0;     ///< energy / continuous_energy (upper bounds
                                   ///< the true approximation ratio)
};

/// Runs the approximation scheme; K controls the continuous accuracy.
common::Result<IncrementalApprox> solve_incremental_approx(const graph::Dag& dag,
                                                           const sched::Mapping& mapping,
                                                           double deadline,
                                                           const model::SpeedModel& incremental,
                                                           int K);

}  // namespace easched::bicrit
