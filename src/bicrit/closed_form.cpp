#include "bicrit/closed_form.hpp"

#include <algorithm>
#include <cmath>

#include "graph/analysis.hpp"
#include "opt/scalar.hpp"

namespace easched::bicrit {

namespace {

using graph::Dag;
using graph::SpTree;
using graph::TaskId;
using model::SpeedModel;
using sched::Schedule;
using sched::TaskDecision;

common::Status require_continuous(const SpeedModel& speeds) {
  if (speeds.kind() != model::SpeedModelKind::kContinuous) {
    return common::Status::unsupported("closed forms hold for the CONTINUOUS model");
  }
  return common::Status::ok();
}

}  // namespace

common::Result<ClosedFormResult> solve_chain(const Dag& dag, double deadline,
                                             const SpeedModel& speeds) {
  if (auto st = require_continuous(speeds); !st.is_ok()) return st;
  if (!graph::is_chain(dag)) return common::Status::unsupported("graph is not a chain");
  EASCHED_CHECK(deadline > 0.0);

  const double total = dag.total_weight();
  double f = total / deadline;
  ClosedFormResult out{Schedule(dag.num_tasks()), 0.0, false};
  if (f > speeds.fmax() * (1.0 + 1e-12)) {
    return common::Status::infeasible("chain needs speed " + std::to_string(f) +
                                      " > fmax = " + std::to_string(speeds.fmax()));
  }
  if (f < speeds.fmin()) {
    f = speeds.fmin();  // every task at its admissible minimum: globally optimal
    out.clamped = true;
  }
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    out.schedule.at(t) = TaskDecision::single(f);
    out.energy += model::execution_energy(dag.weight(t), f);
  }
  return out;
}

common::Result<ClosedFormResult> solve_fork(const Dag& dag, double deadline,
                                            const SpeedModel& speeds) {
  if (auto st = require_continuous(speeds); !st.is_ok()) return st;
  if (!graph::is_fork(dag)) return common::Status::unsupported("graph is not a fork");
  EASCHED_CHECK(deadline > 0.0);

  const TaskId src = dag.sources().front();
  const double w0 = dag.weight(src);
  std::vector<TaskId> children;
  children.reserve(static_cast<std::size_t>(dag.num_tasks() - 1));
  double cube_sum = 0.0;
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    if (t == src) continue;
    children.push_back(t);
    cube_sum += std::pow(dag.weight(t), 3.0);
  }
  const double agg = std::cbrt(cube_sum);  // (sum wi^3)^(1/3)
  const double fmin = speeds.fmin();
  const double fmax = speeds.fmax();

  ClosedFormResult out{Schedule(dag.num_tasks()), 0.0, false};

  // --- The paper's theorem, unclamped case. --------------------------------
  const double f0 = (agg + w0) / deadline;
  if (f0 <= fmax && f0 >= fmin) {
    bool child_below_fmin = false;
    for (TaskId c : children) {
      const double fc = agg > 0.0 ? f0 * dag.weight(c) / agg : fmin;
      if (fc < fmin) child_below_fmin = true;
    }
    if (!child_below_fmin) {
      out.schedule.at(src) = TaskDecision::single(f0);
      out.energy = model::execution_energy(w0, f0);
      for (TaskId c : children) {
        const double fc = agg > 0.0 ? f0 * dag.weight(c) / agg : fmin;
        out.schedule.at(c) = TaskDecision::single(fc);
        out.energy += model::execution_energy(dag.weight(c), fc);
      }
      return out;
    }
  }

  // --- Clamped cases: 1-D convex search over the source time t0. -----------
  // Energy(t0) = w0*max(w0/t0, fmin)^2 + sum_c wc*max(wc/(D-t0), fmin)^2;
  // both parts are convex in t0 (decreasing-then-flat resp. flat-then-
  // increasing), so golden-section search is exact.
  out.clamped = true;
  const double t0_min = w0 / fmax;           // source at fmax
  double t0_max = deadline;                  // leave children no time (guarded below)
  double max_child_w = 0.0;
  for (TaskId c : children) max_child_w = std::max(max_child_w, dag.weight(c));
  if (max_child_w > 0.0) t0_max = deadline - max_child_w / fmax;
  if (w0 > 0.0) t0_max = std::min(t0_max, w0 / fmin);
  if (t0_min > t0_max * (1.0 + 1e-12)) {
    return common::Status::infeasible("fork: even all-fmax execution misses the deadline");
  }
  auto energy_at = [&](double t0) {
    double e = 0.0;
    if (w0 > 0.0) {
      const double f = std::max(w0 / t0, fmin);
      e += model::execution_energy(w0, f);
    }
    const double window = deadline - t0;
    for (TaskId c : children) {
      const double wc = dag.weight(c);
      if (wc == 0.0) continue;
      const double f = std::max(wc / window, fmin);
      e += model::execution_energy(wc, f);
    }
    return e;
  };
  const double t0 = w0 == 0.0
                        ? 0.0
                        : opt::golden_section_minimize(energy_at, std::max(t0_min, 1e-12),
                                                       std::max(t0_max, 1e-12));
  const double f_src = w0 > 0.0 ? std::clamp(std::max(w0 / t0, fmin), fmin, fmax) : fmin;
  out.schedule.at(src) = TaskDecision::single(f_src);
  out.energy = model::execution_energy(w0, f_src);
  const double window = deadline - (w0 > 0.0 ? w0 / f_src : 0.0);
  for (TaskId c : children) {
    const double wc = dag.weight(c);
    double fc = wc > 0.0 ? std::max(wc / window, fmin) : fmin;
    if (fc > fmax * (1.0 + 1e-9)) {
      return common::Status::infeasible("fork: child needs speed above fmax");
    }
    fc = std::min(fc, fmax);
    out.schedule.at(c) = TaskDecision::single(fc);
    out.energy += model::execution_energy(wc, fc);
  }
  return out;
}

double equivalent_weight(const SpTree& tree, const Dag& dag, int node) {
  const auto& nd = tree.node(node);
  switch (nd.kind) {
    case SpTree::Kind::kTask: return dag.weight(nd.task);
    case SpTree::Kind::kDummy: return 0.0;
    case SpTree::Kind::kSeries:
      return equivalent_weight(tree, dag, nd.left) + equivalent_weight(tree, dag, nd.right);
    case SpTree::Kind::kParallel: {
      const double l = equivalent_weight(tree, dag, nd.left);
      const double r = equivalent_weight(tree, dag, nd.right);
      return std::cbrt(l * l * l + r * r * r);
    }
  }
  return 0.0;
}

namespace {

// Top-down time-budget assignment over the SP tree.
void assign_budget(const SpTree& tree, const Dag& dag, int node, double budget,
                   Schedule& schedule) {
  const auto& nd = tree.node(node);
  switch (nd.kind) {
    case SpTree::Kind::kTask: {
      const double w = dag.weight(nd.task);
      // Zero-weight tasks take zero time; pin them to a harmless speed.
      const double f = (w > 0.0 && budget > 0.0) ? w / budget : 1.0;
      schedule.at(nd.task) = TaskDecision::single(f);
      return;
    }
    case SpTree::Kind::kDummy:
      return;
    case SpTree::Kind::kSeries: {
      const double wl = equivalent_weight(tree, dag, nd.left);
      const double wr = equivalent_weight(tree, dag, nd.right);
      const double total = wl + wr;
      const double bl = total > 0.0 ? budget * wl / total : 0.0;
      assign_budget(tree, dag, nd.left, bl, schedule);
      assign_budget(tree, dag, nd.right, budget - bl, schedule);
      return;
    }
    case SpTree::Kind::kParallel:
      assign_budget(tree, dag, nd.left, budget, schedule);
      assign_budget(tree, dag, nd.right, budget, schedule);
      return;
  }
}

}  // namespace

common::Result<ClosedFormResult> solve_sp_tree(const Dag& dag, const SpTree& tree,
                                               double deadline, const SpeedModel& speeds) {
  if (auto st = require_continuous(speeds); !st.is_ok()) return st;
  EASCHED_CHECK(deadline > 0.0);
  EASCHED_CHECK_MSG(tree.root() >= 0, "SP tree has no root");

  ClosedFormResult out{Schedule(dag.num_tasks()), 0.0, false};
  assign_budget(tree, dag, tree.root(), deadline, out.schedule);

  // Clamp into [fmin, fmax]; fmax violation means the closed form does not
  // apply (the caller should use the general continuous solver).
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    auto& exec = out.schedule.at(t).executions.front();
    if (dag.weight(t) == 0.0) {
      exec.speed = speeds.fmin();
      continue;
    }
    if (exec.speed > speeds.fmax() * (1.0 + 1e-9)) {
      return common::Status::unsupported(
          "SP closed form needs speed above fmax; use the continuous DAG solver");
    }
    exec.speed = std::min(exec.speed, speeds.fmax());
    if (exec.speed < speeds.fmin()) {
      exec.speed = speeds.fmin();
      out.clamped = true;
    }
    out.energy += model::execution_energy(dag.weight(t), exec.speed);
  }
  return out;
}

common::Result<ClosedFormResult> solve_series_parallel(const Dag& dag, double deadline,
                                                       const SpeedModel& speeds) {
  auto tree = graph::decompose_series_parallel(dag);
  if (!tree.is_ok()) return tree.status();
  return solve_sp_tree(dag, tree.value(), deadline, speeds);
}

}  // namespace easched::bicrit
