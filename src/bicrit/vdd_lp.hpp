#pragma once
// VDD-HOPPING BI-CRIT: the polynomial-time linear program (claim C7) and
// the two-speed rounding of a continuous solution (claim C8).
//
// LP formulation (companion report RR-7598, summarised in section IV):
// variables alpha_{i,s} >= 0 = time task i spends at level f_s, and start
// times s_i >= 0:
//     minimize   sum_{i,s} f_s^3 * alpha_{i,s}          (energy is LINEAR)
//     subject to sum_s f_s * alpha_{i,s}  = w_i         (work completion)
//                s_u + sum_s alpha_{u,s} <= s_v         (augmented edges)
//                s_i + sum_s alpha_{i,s} <= D           (deadline)
//
// A basic optimal solution of this LP is a vertex; the paper's lemma says
// each task then uses at most two speeds, and they are the two levels
// bracketing the ideal continuous speed. solve_vdd_lp reports per-task
// support statistics so the benches can verify the lemma empirically.

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/speed_model.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"

namespace easched::bicrit {

struct VddSolution {
  sched::Schedule schedule;
  double energy = 0.0;
  int lp_iterations = 0;
  int max_speeds_per_task = 0;     ///< support size (alpha > 1e-7) maximum
  bool speeds_adjacent = true;     ///< every task's support = consecutive levels
};

/// Solves the VDD-HOPPING BI-CRIT LP with the bundled simplex.
common::Result<VddSolution> solve_vdd_lp(const graph::Dag& dag, const sched::Mapping& mapping,
                                         double deadline, const model::SpeedModel& speeds);

/// Rounds a continuous schedule into VDD profiles: each task keeps its
/// continuous duration d_i and mixes the two levels bracketing w_i/d_i
/// (work/time matching). Feasible whenever the continuous schedule is and
/// the levels span [fmin_cont, fmax_cont]; energy >= LP optimum.
common::Result<VddSolution> vdd_from_continuous(const graph::Dag& dag,
                                                const std::vector<double>& durations,
                                                const model::SpeedModel& speeds);

}  // namespace easched::bicrit
