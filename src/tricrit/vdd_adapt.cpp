#include "tricrit/vdd_adapt.hpp"

#include <algorithm>
#include <cmath>

#include "model/energy.hpp"

namespace easched::tricrit {

namespace {

// Two-speed profile processing work w in time t with bracket (lo, hi).
std::vector<model::SpeedInterval> mix_profile(double w, double t, double lo, double hi) {
  std::vector<model::SpeedInterval> profile;
  if (hi - lo < 1e-12) {
    profile.push_back(model::SpeedInterval{hi, w / hi});
    return profile;
  }
  const auto [a_lo, a_hi] = model::two_speed_mix(w, t, lo, hi);
  if (a_lo > 0.0) profile.push_back(model::SpeedInterval{lo, a_lo});
  if (a_hi > 0.0) profile.push_back(model::SpeedInterval{hi, a_hi});
  return profile;
}

}  // namespace

common::Result<VddAdaptResult> adapt_to_vdd(const graph::Dag& dag,
                                            const TriCritSolution& cont,
                                            const model::ReliabilityModel& rel,
                                            const model::SpeedModel& vdd) {
  if (vdd.kind() != model::SpeedModelKind::kVddHopping) {
    return common::Status::unsupported("adapt_to_vdd needs the VDD-HOPPING model");
  }
  const int n = dag.num_tasks();
  EASCHED_CHECK(cont.schedule.num_tasks() == n);

  VddAdaptResult out{TriCritSolution(n), cont.energy, 0.0, 0};
  for (graph::TaskId t = 0; t < n; ++t) {
    const double w = dag.weight(t);
    const auto& decision = cont.schedule.at(t);
    const double threshold = rel.threshold_failure(w);

    // theta in [0,1] interpolates each execution's duration between the
    // continuous duration (theta=0, lowest energy) and the pure-upper-level
    // duration (theta=1, best reliability). Build all executions for a
    // given theta and test the task's combined reliability.
    auto build = [&](double theta) {
      std::vector<std::vector<model::SpeedInterval>> profiles;
      for (const auto& exec : decision.executions) {
        double f = exec.speed;
        if (f < vdd.fmin()) f = vdd.fmin();
        EASCHED_CHECK_MSG(f <= vdd.fmax() * (1.0 + 1e-9),
                          "continuous speed above the fastest VDD level");
        f = std::min(f, vdd.fmax());
        const auto [lo, hi] = vdd.bracket(f);
        const double t_cont = std::min(exec.duration(w), w / lo);
        const double t_fast = w / hi;
        const double dur = t_cont + theta * (t_fast - t_cont);
        profiles.push_back(mix_profile(w, dur, lo, hi));
      }
      return profiles;
    };
    auto ok = [&](const std::vector<std::vector<model::SpeedInterval>>& profiles) {
      if (w == 0.0) return true;
      double combined = 1.0;
      for (const auto& p : profiles) combined *= rel.mixed_failure(p);
      return combined <= threshold * (1.0 + 1e-9);
    };

    auto profiles = build(0.0);
    if (!ok(profiles)) {
      ++out.tightened_tasks;
      // Bisect the smallest theta restoring the constraint; theta=1 always
      // works (pure upper level dominates the continuous speed).
      double lo_theta = 0.0, hi_theta = 1.0;
      for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo_theta + hi_theta);
        if (ok(build(mid))) {
          hi_theta = mid;
        } else {
          lo_theta = mid;
        }
      }
      profiles = build(hi_theta);
      if (!ok(profiles)) {
        return common::Status::infeasible("task " + std::to_string(t) +
                                          ": VDD adaptation cannot restore reliability");
      }
    }

    sched::TaskDecision d;
    d.executions.reserve(profiles.size());
    double energy = 0.0;
    for (auto& p : profiles) {
      energy += model::vdd_energy(p);
      d.executions.push_back(sched::Execution::vdd(std::move(p)));
    }
    if (d.executions.size() == 2) ++out.solution.re_executed;
    out.solution.schedule.at(t) = std::move(d);
    out.solution.energy += energy;
  }
  out.energy_loss_ratio = cont.energy > 0.0 ? out.solution.energy / cont.energy : 1.0;
  return out;
}

}  // namespace easched::tricrit
