#pragma once
// Shared re-execution machinery for the TRI-CRIT problem (section II,
// Definition 2): minimise energy subject to the deadline AND the per-task
// reliability constraint R_i >= R_i(frel), choosing which tasks to
// re-execute and every execution speed.
//
// Key facts encoded here (derivations in the companion reports, verified
// numerically by tests/tricrit/reexec_test.cpp):
//  * a single execution satisfies the constraint iff its speed f >= frel;
//  * for a re-executed task it is optimal to run both executions at the
//    same speed g, and the constraint becomes g >= f_inf(w), where
//    lambda(f_inf)^2 = lambda(frel)  (ReliabilityModel::f_inf);
//  * within a time budget t the best single execution runs at
//    f = max(w/t, frel) and the best re-execution at g = max(2w/t, f_inf).

#include <optional>

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "sched/schedule.hpp"

namespace easched::tricrit {

/// Result of optimising one task within a time budget.
struct ExecChoice {
  bool re_executed = false;
  double speed = 0.0;      ///< speed of the execution(s); equal when re-executed
  double energy = 0.0;     ///< w f^2 or 2 w g^2
  double time_used = 0.0;  ///< w/f or 2w/g (<= the budget)
};

/// Best single execution of weight w within time budget t:
/// f = max(w/t, frel); kInfeasible when f > fmax.
common::Result<ExecChoice> best_single(double weight, double budget,
                                       const model::ReliabilityModel& rel,
                                       const model::SpeedModel& speeds);

/// Best equal-speed re-execution within time budget t (both executions):
/// g = max(2w/t, f_inf(w)); kInfeasible when g > fmax.
common::Result<ExecChoice> best_double(double weight, double budget,
                                       const model::ReliabilityModel& rel,
                                       const model::SpeedModel& speeds);

/// The better of best_single / best_double (kInfeasible when neither fits).
common::Result<ExecChoice> best_choice(double weight, double budget,
                                       const model::ReliabilityModel& rel,
                                       const model::SpeedModel& speeds);

/// A TRI-CRIT schedule plus bookkeeping common to every solver.
struct TriCritSolution {
  sched::Schedule schedule;
  double energy = 0.0;
  int re_executed = 0;

  explicit TriCritSolution(int num_tasks) : schedule(num_tasks) {}
};

/// Applies an ExecChoice to the schedule and accumulates the energy.
void apply_choice(TriCritSolution& sol, graph::TaskId task, const ExecChoice& choice);

}  // namespace easched::tricrit
