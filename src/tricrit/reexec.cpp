#include "tricrit/reexec.hpp"

#include <algorithm>

namespace easched::tricrit {

common::Result<ExecChoice> best_single(double weight, double budget,
                                       const model::ReliabilityModel& rel,
                                       const model::SpeedModel& speeds) {
  if (weight == 0.0) return ExecChoice{false, speeds.fmin(), 0.0, 0.0};
  if (budget <= 0.0) return common::Status::infeasible("no time budget");
  const double f_floor = std::max(rel.frel(), speeds.fmin());
  const double f = std::max(weight / budget, f_floor);
  if (f > speeds.fmax() * (1.0 + 1e-12)) {
    return common::Status::infeasible("single execution needs speed above fmax");
  }
  return ExecChoice{false, std::min(f, speeds.fmax()),
                    model::execution_energy(weight, std::min(f, speeds.fmax())), weight / f};
}

common::Result<ExecChoice> best_double(double weight, double budget,
                                       const model::ReliabilityModel& rel,
                                       const model::SpeedModel& speeds) {
  if (weight == 0.0) return ExecChoice{false, speeds.fmin(), 0.0, 0.0};
  if (budget <= 0.0) return common::Status::infeasible("no time budget");
  auto finf = rel.f_inf(weight);
  if (!finf.is_ok()) return finf.status();
  const double g_floor = std::max(finf.value(), speeds.fmin());
  const double g = std::max(2.0 * weight / budget, g_floor);
  if (g > speeds.fmax() * (1.0 + 1e-12)) {
    return common::Status::infeasible("re-execution needs speed above fmax");
  }
  const double gc = std::min(g, speeds.fmax());
  return ExecChoice{true, gc, 2.0 * model::execution_energy(weight, gc), 2.0 * weight / gc};
}

common::Result<ExecChoice> best_choice(double weight, double budget,
                                       const model::ReliabilityModel& rel,
                                       const model::SpeedModel& speeds) {
  auto s = best_single(weight, budget, rel, speeds);
  auto d = best_double(weight, budget, rel, speeds);
  if (!s.is_ok() && !d.is_ok()) return s.status();
  if (!s.is_ok()) return d;
  if (!d.is_ok()) return s;
  return d.value().energy < s.value().energy ? d : s;
}

void apply_choice(TriCritSolution& sol, graph::TaskId task, const ExecChoice& choice) {
  if (choice.re_executed) {
    sol.schedule.at(task) = sched::TaskDecision::re_exec(choice.speed, choice.speed);
    ++sol.re_executed;
  } else {
    sol.schedule.at(task) = sched::TaskDecision::single(choice.speed);
  }
  sol.energy += choice.energy;
}

}  // namespace easched::tricrit
