#include "tricrit/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/analysis.hpp"
#include "opt/barrier.hpp"
#include "opt/scalar.hpp"

namespace easched::tricrit {

namespace {

using graph::Dag;
using graph::TaskId;

struct ModeBounds {
  double eff_weight = 0.0;  ///< w (single) or 2w (double)
  double lb = 0.0;          ///< min total duration: eff_weight / fmax
  double ub = 0.0;          ///< max total duration: eff_weight / floor speed
  double floor_speed = 0.0;
};

common::Result<std::vector<ModeBounds>> mode_bounds(const Dag& dag,
                                                    const model::ReliabilityModel& rel,
                                                    const model::SpeedModel& speeds,
                                                    const std::vector<bool>& re_exec) {
  const int n = dag.num_tasks();
  std::vector<ModeBounds> out(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    const double w = dag.weight(t);
    auto& mb = out[static_cast<std::size_t>(t)];
    if (re_exec[static_cast<std::size_t>(t)]) {
      auto finf = rel.f_inf(w);
      if (!finf.is_ok()) return finf.status();
      mb.floor_speed = std::max(finf.value(), speeds.fmin());
      mb.eff_weight = 2.0 * w;
    } else {
      mb.floor_speed = std::max(rel.frel(), speeds.fmin());
      mb.eff_weight = w;
    }
    mb.lb = mb.eff_weight / speeds.fmax();
    mb.ub = mb.eff_weight / mb.floor_speed;
    // Keep a sliver of interior even when frel == fmax pins the speed.
    if (mb.ub <= mb.lb * (1.0 + 1e-9)) mb.ub = mb.lb * (1.0 + 1e-7);
  }
  return out;
}

TriCritSolution solution_from_durations(const Dag& dag, const model::SpeedModel& speeds,
                                        const std::vector<ModeBounds>& bounds,
                                        const std::vector<bool>& re_exec,
                                        const std::vector<double>& durations) {
  TriCritSolution sol(dag.num_tasks());
  for (TaskId t = 0; t < dag.num_tasks(); ++t) {
    const double w = dag.weight(t);
    const auto& mb = bounds[static_cast<std::size_t>(t)];
    const double d = durations[static_cast<std::size_t>(t)];
    const double speed = std::clamp(mb.eff_weight / d, mb.floor_speed, speeds.fmax());
    if (re_exec[static_cast<std::size_t>(t)]) {
      apply_choice(sol, t,
                   ExecChoice{true, speed, 2.0 * model::execution_energy(w, speed),
                              2.0 * w / speed});
    } else {
      apply_choice(sol, t,
                   ExecChoice{false, speed, model::execution_energy(w, speed), w / speed});
    }
  }
  return sol;
}

}  // namespace

common::Result<TriCritSolution> continuous_with_modes(const Dag& dag,
                                                      const sched::Mapping& mapping,
                                                      double deadline,
                                                      const model::ReliabilityModel& rel,
                                                      const model::SpeedModel& speeds,
                                                      const std::vector<bool>& re_exec) {
  if (speeds.kind() != model::SpeedModelKind::kContinuous) {
    return common::Status::unsupported("continuous_with_modes needs the CONTINUOUS model");
  }
  const int n = dag.num_tasks();
  EASCHED_CHECK(static_cast<int>(re_exec.size()) == n);
  EASCHED_CHECK(deadline > 0.0);
  for (TaskId t = 0; t < n; ++t) {
    if (dag.weight(t) <= 0.0) {
      return common::Status::unsupported("continuous_with_modes requires positive weights");
    }
  }
  auto bounds_res = mode_bounds(dag, rel, speeds, re_exec);
  if (!bounds_res.is_ok()) return bounds_res.status();
  const auto& bounds = bounds_res.value();

  const Dag aug = mapping.augmented_graph(dag);
  // Feasibility: everything as fast as allowed.
  std::vector<double> d_lb(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) d_lb[static_cast<std::size_t>(t)] = bounds[static_cast<std::size_t>(t)].lb;
  const double m_lb = graph::time_analysis(aug, d_lb, 0.0).makespan;
  if (m_lb > deadline * (1.0 + 1e-9)) {
    return common::Status::infeasible("mode set misses the deadline even at fmax");
  }
  // If everything can run at its slowest, that is optimal for this mode set.
  std::vector<double> d_ub(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) d_ub[static_cast<std::size_t>(t)] = bounds[static_cast<std::size_t>(t)].ub;
  if (graph::time_analysis(aug, d_ub, 0.0).makespan <= deadline) {
    return solution_from_durations(dag, speeds, bounds, re_exec, d_ub);
  }
  if (m_lb > deadline * (1.0 - 1e-9)) {
    // Numerically empty interior: only the all-fast point fits.
    return solution_from_durations(dag, speeds, bounds, re_exec, d_lb);
  }

  // ---- Convex program over x = [s, d]. -------------------------------------
  opt::InversePowerObjective objective;
  for (TaskId t = 0; t < n; ++t) {
    const double ew = bounds[static_cast<std::size_t>(t)].eff_weight;
    objective.add_term(n + t, ew * ew * ew);
  }
  std::vector<opt::LinearConstraint> cons;
  cons.reserve(static_cast<std::size_t>(aug.num_edges() + 4 * n));
  for (TaskId u = 0; u < n; ++u) {
    for (TaskId v : aug.successors(u)) {
      cons.push_back(opt::LinearConstraint{{{u, 1.0}, {n + u, 1.0}, {v, -1.0}}, 0.0});
    }
  }
  for (TaskId t = 0; t < n; ++t) {
    const auto& mb = bounds[static_cast<std::size_t>(t)];
    cons.push_back(opt::LinearConstraint{{{t, 1.0}, {n + t, 1.0}}, deadline});
    cons.push_back(opt::LinearConstraint{{{t, -1.0}}, 0.0});
    cons.push_back(opt::LinearConstraint{{{n + t, 1.0}}, mb.ub});
    cons.push_back(opt::LinearConstraint{{{n + t, -1.0}}, -mb.lb});
  }

  // ---- Strictly feasible start: interpolate between lb and ub durations. ---
  const double target = m_lb + 0.5 * (deadline - m_lb);
  auto makespan_at = [&](double theta) {
    std::vector<double> d(static_cast<std::size_t>(n));
    for (TaskId t = 0; t < n; ++t) {
      const auto& mb = bounds[static_cast<std::size_t>(t)];
      d[static_cast<std::size_t>(t)] = mb.lb + theta * (mb.ub - mb.lb);
    }
    return graph::time_analysis(aug, d, 0.0).makespan;
  };
  double theta_lo = 1e-9, theta_hi = 1.0 - 1e-9;
  if (makespan_at(theta_hi) > target) {
    for (int it = 0; it < 100; ++it) {
      const double mid = 0.5 * (theta_lo + theta_hi);
      if (makespan_at(mid) <= target) {
        theta_lo = mid;
      } else {
        theta_hi = mid;
      }
    }
  } else {
    theta_lo = theta_hi;
  }
  const double theta = theta_lo;
  std::vector<double> d0(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    const auto& mb = bounds[static_cast<std::size_t>(t)];
    d0[static_cast<std::size_t>(t)] = mb.lb + theta * (mb.ub - mb.lb);
  }
  const auto ta = graph::time_analysis(aug, d0, deadline);
  const auto depth = graph::depth_levels(aug);
  const int max_depth = *std::max_element(depth.begin(), depth.end());
  const double slack = deadline - ta.makespan;
  EASCHED_CHECK_MSG(slack > 0.0, "internal: no slack at the barrier start point");
  opt::Vector x0(static_cast<std::size_t>(2 * n));
  for (TaskId t = 0; t < n; ++t) {
    const double frac = static_cast<double>(depth[static_cast<std::size_t>(t)] + 1) /
                        static_cast<double>(max_depth + 2);
    x0[static_cast<std::size_t>(t)] = ta.asap[static_cast<std::size_t>(t)] + slack * frac;
    x0[static_cast<std::size_t>(n + t)] = d0[static_cast<std::size_t>(t)];
  }

  auto res = opt::minimize_barrier(objective, cons, x0, {});
  if (!res.status.is_ok() && res.x.empty()) return res.status;
  std::vector<double> durations(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    durations[static_cast<std::size_t>(t)] = res.x[static_cast<std::size_t>(n + t)];
  }
  return solution_from_durations(dag, speeds, bounds, re_exec, durations);
}

common::Result<TriCritSolution> heuristic_uniform_reexec(const Dag& dag,
                                                         const sched::Mapping& mapping,
                                                         double deadline,
                                                         const model::ReliabilityModel& rel,
                                                         const model::SpeedModel& speeds,
                                                         const HeuristicOptions& options) {
  const int n = dag.num_tasks();
  if (auto st = mapping.validate(dag); !st.is_ok()) return st;
  const Dag aug = mapping.augmented_graph(dag);

  // Uniform slowdown: allocate t_i = w_i * D / M1 (unit-speed makespan M1).
  std::vector<double> unit(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) unit[static_cast<std::size_t>(t)] = dag.weight(t);
  const double m1 = graph::time_analysis(aug, unit, 0.0).makespan;
  if (m1 / speeds.fmax() > deadline * (1.0 + 1e-9)) {
    return common::Status::infeasible("even all-fmax misses the deadline");
  }
  const double scale = deadline / m1;

  TriCritSolution sol(n);
  std::vector<bool> modes(static_cast<std::size_t>(n), false);
  for (TaskId t = 0; t < n; ++t) {
    const double budget = dag.weight(t) * scale;
    auto choice = best_choice(dag.weight(t), budget, rel, speeds);
    if (!choice.is_ok()) return choice.status();
    apply_choice(sol, t, choice.value());
    modes[static_cast<std::size_t>(t)] = choice.value().re_executed;
  }

  if (options.polish) {
    auto polished = continuous_with_modes(dag, mapping, deadline, rel, speeds, modes);
    if (polished.is_ok() && polished.value().energy < sol.energy) {
      return polished;
    }
  }
  return sol;
}

common::Result<TriCritSolution> heuristic_slack_reexec(const Dag& dag,
                                                       const sched::Mapping& mapping,
                                                       double deadline,
                                                       const model::ReliabilityModel& rel,
                                                       const model::SpeedModel& speeds,
                                                       const HeuristicOptions& options) {
  const int n = dag.num_tasks();
  if (auto st = mapping.validate(dag); !st.is_ok()) return st;
  const Dag aug = mapping.augmented_graph(dag);

  // Baseline: all-single continuous optimum (floors at frel).
  std::vector<bool> modes(static_cast<std::size_t>(n), false);
  auto base = continuous_with_modes(dag, mapping, deadline, rel, speeds, modes);
  if (!base.is_ok()) return base.status();
  std::vector<double> durations = base.value().schedule.durations(dag);
  std::vector<double> energy_of(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    energy_of[static_cast<std::size_t>(t)] = 0.0;
    for (const auto& e : base.value().schedule.at(t).executions) {
      energy_of[static_cast<std::size_t>(t)] += e.energy(dag.weight(t));
    }
  }

  // Walk tasks by decreasing slack; re-execute when the available window
  // pays for the second execution.
  for (;;) {
    const auto ta = graph::time_analysis(aug, durations, deadline);
    // Rank not-yet-re-executed tasks by current slack.
    std::vector<TaskId> order;
    order.reserve(static_cast<std::size_t>(n));
    for (TaskId t = 0; t < n; ++t) {
      if (!modes[static_cast<std::size_t>(t)]) order.push_back(t);
    }
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return ta.slack[static_cast<std::size_t>(a)] > ta.slack[static_cast<std::size_t>(b)];
    });
    bool changed = false;
    for (TaskId t : order) {
      const double budget = durations[static_cast<std::size_t>(t)] +
                            std::max(0.0, ta.slack[static_cast<std::size_t>(t)]);
      auto dbl = best_double(dag.weight(t), budget, rel, speeds);
      if (!dbl.is_ok()) continue;
      if (dbl.value().energy < energy_of[static_cast<std::size_t>(t)] - 1e-12) {
        modes[static_cast<std::size_t>(t)] = true;
        durations[static_cast<std::size_t>(t)] = dbl.value().time_used;
        energy_of[static_cast<std::size_t>(t)] = dbl.value().energy;
        changed = true;
        break;  // slacks changed; recompute the ranking
      }
    }
    if (!changed) break;
  }

  // Assemble the unpolished schedule.
  TriCritSolution sol(n);
  for (TaskId t = 0; t < n; ++t) {
    const double w = dag.weight(t);
    if (modes[static_cast<std::size_t>(t)]) {
      const double g = 2.0 * w / durations[static_cast<std::size_t>(t)];
      apply_choice(sol, t, ExecChoice{true, g, 2.0 * model::execution_energy(w, g),
                                      durations[static_cast<std::size_t>(t)]});
    } else {
      const double f = w / durations[static_cast<std::size_t>(t)];
      apply_choice(sol, t, ExecChoice{false, f, model::execution_energy(w, f),
                                      durations[static_cast<std::size_t>(t)]});
    }
  }

  if (options.polish) {
    auto polished = continuous_with_modes(dag, mapping, deadline, rel, speeds, modes);
    if (polished.is_ok() && polished.value().energy < sol.energy) {
      return polished;
    }
  }
  return sol;
}

common::Result<TriCritSolution> heuristic_greedy_reexec(const Dag& dag,
                                                        const sched::Mapping& mapping,
                                                        double deadline,
                                                        const model::ReliabilityModel& rel,
                                                        const model::SpeedModel& speeds) {
  const int n = dag.num_tasks();
  if (auto st = mapping.validate(dag); !st.is_ok()) return st;

  std::vector<bool> modes(static_cast<std::size_t>(n), false);
  auto current = continuous_with_modes(dag, mapping, deadline, rel, speeds, modes);
  if (!current.is_ok()) return current.status();

  for (;;) {
    int best_task = -1;
    common::Result<TriCritSolution> best = common::Status::internal("unset");
    for (TaskId t = 0; t < n; ++t) {
      if (modes[static_cast<std::size_t>(t)]) continue;
      modes[static_cast<std::size_t>(t)] = true;
      auto candidate = continuous_with_modes(dag, mapping, deadline, rel, speeds, modes);
      modes[static_cast<std::size_t>(t)] = false;
      if (!candidate.is_ok()) continue;
      const double incumbent =
          best_task >= 0 ? best.value().energy : current.value().energy;
      if (candidate.value().energy < incumbent - 1e-12) {
        best_task = t;
        best = std::move(candidate);
      }
    }
    if (best_task < 0) break;
    modes[static_cast<std::size_t>(best_task)] = true;
    current = std::move(best);
  }
  return current;
}

common::Result<TriCritSolution> heuristic_best_of(const Dag& dag,
                                                  const sched::Mapping& mapping,
                                                  double deadline,
                                                  const model::ReliabilityModel& rel,
                                                  const model::SpeedModel& speeds,
                                                  const HeuristicOptions& options) {
  auto a = heuristic_uniform_reexec(dag, mapping, deadline, rel, speeds, options);
  auto b = heuristic_slack_reexec(dag, mapping, deadline, rel, speeds, options);
  if (!a.is_ok() && !b.is_ok()) return a.status();
  if (!a.is_ok()) return b;
  if (!b.is_ok()) return a;
  return a.value().energy <= b.value().energy ? a : b;
}

}  // namespace easched::tricrit
