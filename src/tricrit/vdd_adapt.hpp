#pragma once
// VDD-HOPPING TRI-CRIT (claim C10).
//
// The paper: TRI-CRIT under VDD-HOPPING is NP-complete (while BI-CRIT was
// polynomial), and the CONTINUOUS heuristics adapt: "for a solution given
// by a heuristic for the CONTINUOUS model, if a task should be executed at
// the continuous speed f, then we would execute it at the two closest
// discrete speeds that bound f, while matching the execution time and
// reliability for this task. There remains to quantify the performance
// loss incurred by the latter constraints." — bench_tricrit_vdd does the
// quantification.
//
// Mixing semantics: failure probability accumulates linearly in time,
// lambda_mix = sum_s rate(f_s) * alpha_s (model/reliability.hpp). Since
// rate() is convex in f, the work/time-matched two-speed mix has *slightly
// worse* reliability than the continuous execution it replaces; the
// adapter then shortens the execution (shifting work to the upper level)
// until the task constraint holds again — at the pure upper level the
// constraint always holds, so the search is well-defined; shrinking times
// keeps the deadline satisfied.

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "tricrit/reexec.hpp"

namespace easched::tricrit {

struct VddAdaptResult {
  TriCritSolution solution;
  double continuous_energy = 0.0;  ///< energy of the input schedule
  double energy_loss_ratio = 0.0;  ///< vdd energy / continuous energy
  int tightened_tasks = 0;         ///< tasks that needed the reliability fix-up
};

/// Converts a CONTINUOUS TRI-CRIT schedule into a VDD-HOPPING one.
/// `vdd` must span the continuous speeds actually used (fmax level >= them).
common::Result<VddAdaptResult> adapt_to_vdd(const graph::Dag& dag,
                                            const TriCritSolution& continuous_solution,
                                            const model::ReliabilityModel& rel,
                                            const model::SpeedModel& vdd);

}  // namespace easched::tricrit
