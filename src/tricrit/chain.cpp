#include "tricrit/chain.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "opt/waterfill.hpp"

namespace easched::tricrit {

namespace {

struct ChainContext {
  std::vector<double> weights;
  std::vector<double> f_inf;  ///< per-task minimal equal re-execution speed
  double deadline = 0.0;
  double f_single_floor = 0.0;
  double fmin = 0.0, fmax = 0.0;
};

common::Result<ChainContext> make_context(const std::vector<double>& weights, double deadline,
                                          const model::ReliabilityModel& rel,
                                          const model::SpeedModel& speeds) {
  if (speeds.kind() != model::SpeedModelKind::kContinuous) {
    return common::Status::unsupported("chain TRI-CRIT solvers use the CONTINUOUS model");
  }
  EASCHED_CHECK(deadline > 0.0);
  ChainContext ctx;
  ctx.weights = weights;
  ctx.deadline = deadline;
  ctx.f_single_floor = std::max(rel.frel(), speeds.fmin());
  ctx.fmin = speeds.fmin();
  ctx.fmax = speeds.fmax();
  ctx.f_inf.reserve(weights.size());
  for (double w : weights) {
    if (w == 0.0) {
      ctx.f_inf.push_back(speeds.fmin());
      continue;
    }
    auto fi = rel.f_inf(w);
    if (!fi.is_ok()) return fi.status();
    ctx.f_inf.push_back(std::max(fi.value(), speeds.fmin()));
  }
  return ctx;
}

// Per-task mode in the inner allocation: single, double, or the B&B
// relaxation (cheapest energy curve over the union of both time boxes —
// a pointwise lower bound on either real mode).
enum class Mode { kSingle, kDouble, kRelaxed };

// Inner continuous allocation for fixed modes: water-filling.
// Returns infinity energy when the set is infeasible within the deadline.
struct InnerResult {
  double energy = std::numeric_limits<double>::infinity();
  std::vector<double> times;  // per-task total time
  bool feasible = false;
};

InnerResult solve_inner_modes(const ChainContext& ctx, const std::vector<Mode>& mode) {
  const std::size_t n = ctx.weights.size();
  opt::WaterfillProblem p;
  p.coef.resize(n);
  p.lo.resize(n);
  p.hi.resize(n);
  p.budget = ctx.deadline;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = ctx.weights[i];
    if (w == 0.0) {
      p.coef[i] = 0.0;
      p.lo[i] = 0.0;
      p.hi[i] = 0.0;
      continue;
    }
    switch (mode[i]) {
      case Mode::kDouble:
        p.coef[i] = 8.0 * w * w * w;       // 2 w g^2 with g = 2w/t
        p.lo[i] = 2.0 * w / ctx.fmax;      // g <= fmax
        p.hi[i] = 2.0 * w / ctx.f_inf[i];  // g >= f_inf
        break;
      case Mode::kSingle:
        p.coef[i] = w * w * w;                 // w f^2 with f = w/t
        p.lo[i] = w / ctx.fmax;                // f <= fmax
        p.hi[i] = w / ctx.f_single_floor;      // f >= max(frel, fmin)
        break;
      case Mode::kRelaxed:
        // Valid lower bound for both modes: single's cheaper curve over
        // the union of the two admissible time windows.
        p.coef[i] = w * w * w;
        p.lo[i] = w / ctx.fmax;
        p.hi[i] = std::max(w / ctx.f_single_floor, 2.0 * w / ctx.f_inf[i]);
        break;
    }
  }
  InnerResult out;
  auto sol = opt::waterfill(p);
  if (!sol.is_ok()) return out;
  out.energy = sol.value().energy;
  out.times = std::move(sol.value().t);
  out.feasible = true;
  return out;
}

InnerResult solve_inner(const ChainContext& ctx, const std::vector<bool>& re_exec) {
  std::vector<Mode> mode(re_exec.size());
  for (std::size_t i = 0; i < re_exec.size(); ++i) {
    mode[i] = re_exec[i] ? Mode::kDouble : Mode::kSingle;
  }
  return solve_inner_modes(ctx, mode);
}

ChainSolution build_solution(const ChainContext& ctx, const std::vector<bool>& re_exec,
                             const InnerResult& inner) {
  ChainSolution out{TriCritSolution(static_cast<int>(ctx.weights.size())), re_exec, 0};
  for (std::size_t i = 0; i < ctx.weights.size(); ++i) {
    const double w = ctx.weights[i];
    if (w == 0.0) {
      out.solution.schedule.at(static_cast<int>(i)) =
          sched::TaskDecision::single(ctx.fmin);
      continue;
    }
    const double t = inner.times[i];
    if (re_exec[i]) {
      const double g = std::clamp(2.0 * w / t, ctx.f_inf[i], ctx.fmax);
      apply_choice(out.solution, static_cast<int>(i),
                   ExecChoice{true, g, 2.0 * model::execution_energy(w, g), 2.0 * w / g});
    } else {
      const double f = std::clamp(w / t, ctx.f_single_floor, ctx.fmax);
      apply_choice(out.solution, static_cast<int>(i),
                   ExecChoice{false, f, model::execution_energy(w, f), w / f});
    }
  }
  return out;
}

}  // namespace

common::Result<ChainSolution> solve_chain_exact(const std::vector<double>& weights,
                                                double deadline,
                                                const model::ReliabilityModel& rel,
                                                const model::SpeedModel& speeds,
                                                int max_tasks) {
  const int n = static_cast<int>(weights.size());
  if (n > max_tasks) {
    return common::Status::unsupported("exact chain solver limited to " +
                                       std::to_string(max_tasks) + " tasks (NP-hard)");
  }
  auto ctx_res = make_context(weights, deadline, rel, speeds);
  if (!ctx_res.is_ok()) return ctx_res.status();
  const auto& ctx = ctx_res.value();

  double best_energy = std::numeric_limits<double>::infinity();
  std::vector<bool> best_set;
  InnerResult best_inner;
  long long explored = 0;
  std::vector<bool> re_exec(static_cast<std::size_t>(n), false);
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    for (int i = 0; i < n; ++i) re_exec[static_cast<std::size_t>(i)] = (mask >> i) & 1ULL;
    ++explored;
    auto inner = solve_inner(ctx, re_exec);
    if (inner.feasible && inner.energy < best_energy) {
      best_energy = inner.energy;
      best_set = re_exec;
      best_inner = std::move(inner);
    }
  }
  if (!std::isfinite(best_energy)) {
    return common::Status::infeasible("no re-execution subset meets deadline and reliability");
  }
  auto out = build_solution(ctx, best_set, best_inner);
  out.subsets_explored = explored;
  return out;
}

common::Result<ChainSolution> solve_chain_greedy(const std::vector<double>& weights,
                                                 double deadline,
                                                 const model::ReliabilityModel& rel,
                                                 const model::SpeedModel& speeds) {
  const int n = static_cast<int>(weights.size());
  auto ctx_res = make_context(weights, deadline, rel, speeds);
  if (!ctx_res.is_ok()) return ctx_res.status();
  const auto& ctx = ctx_res.value();

  // Step 1 ("slow all tasks equally"): the all-single water-filling — on a
  // chain this is exactly uniform speed max(sum w/D, frel).
  std::vector<bool> current(static_cast<std::size_t>(n), false);
  auto inner = solve_inner(ctx, current);
  if (!inner.feasible) {
    // All-single infeasible (e.g. frel forces too much speed): try starting
    // from everything re-executed? No — a single task can still fail alone;
    // fall back to exploring single-flip starts below from the empty set.
    return common::Status::infeasible("all-single chain allocation infeasible");
  }
  long long explored = 1;

  // Step 2 ("choose the tasks to be re-executed"): greedy best-improvement.
  for (;;) {
    int best_task = -1;
    double best_energy = inner.energy;
    InnerResult best_inner;
    for (int i = 0; i < n; ++i) {
      if (current[static_cast<std::size_t>(i)] || ctx.weights[static_cast<std::size_t>(i)] == 0.0) {
        continue;
      }
      current[static_cast<std::size_t>(i)] = true;
      auto candidate = solve_inner(ctx, current);
      current[static_cast<std::size_t>(i)] = false;
      ++explored;
      if (candidate.feasible && candidate.energy < best_energy - 1e-12) {
        best_energy = candidate.energy;
        best_task = i;
        best_inner = std::move(candidate);
      }
    }
    if (best_task < 0) break;
    current[static_cast<std::size_t>(best_task)] = true;
    inner = std::move(best_inner);
  }

  auto out = build_solution(ctx, current, inner);
  out.subsets_explored = explored;
  return out;
}

namespace {

// Depth-first branch & bound over modes; tasks decided in weight-descending
// order (heavy tasks constrain the allocation most).
class ChainBnb {
 public:
  ChainBnb(const ChainContext& ctx, long long max_nodes)
      : ctx_(ctx), max_nodes_(max_nodes) {
    const std::size_t n = ctx.weights.size();
    order_.resize(n);
    for (std::size_t i = 0; i < n; ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return ctx_.weights[a] > ctx_.weights[b];
    });
    mode_.assign(n, Mode::kRelaxed);
  }

  bool run() {
    dfs(0);
    return std::isfinite(best_energy_);
  }

  bool aborted() const { return aborted_; }
  long long nodes() const { return nodes_; }
  double best_energy() const { return best_energy_; }
  const std::vector<bool>& best_set() const { return best_set_; }
  const InnerResult& best_inner() const { return best_inner_; }

 private:
  void dfs(std::size_t depth) {
    if (aborted_) return;
    if (++nodes_ > max_nodes_) {
      aborted_ = true;
      return;
    }
    auto bound = solve_inner_modes(ctx_, mode_);
    if (!bound.feasible || bound.energy >= best_energy_ - 1e-12) return;
    if (depth == order_.size()) {
      // All modes decided: `bound` is the exact value of this subset.
      best_energy_ = bound.energy;
      best_inner_ = std::move(bound);
      best_set_.assign(mode_.size(), false);
      for (std::size_t i = 0; i < mode_.size(); ++i) {
        best_set_[i] = mode_[i] == Mode::kDouble;
      }
      return;
    }
    const std::size_t task = order_[depth];
    // Try single first (the common case under moderate slack).
    mode_[task] = Mode::kSingle;
    dfs(depth + 1);
    mode_[task] = Mode::kDouble;
    dfs(depth + 1);
    mode_[task] = Mode::kRelaxed;
  }

  const ChainContext& ctx_;
  long long max_nodes_;
  std::vector<std::size_t> order_;
  std::vector<Mode> mode_;
  std::vector<bool> best_set_;
  InnerResult best_inner_;
  double best_energy_ = std::numeric_limits<double>::infinity();
  long long nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

common::Result<ChainSolution> solve_chain_bnb(const std::vector<double>& weights,
                                              double deadline,
                                              const model::ReliabilityModel& rel,
                                              const model::SpeedModel& speeds,
                                              long long max_nodes) {
  auto ctx_res = make_context(weights, deadline, rel, speeds);
  if (!ctx_res.is_ok()) return ctx_res.status();
  const auto& ctx = ctx_res.value();

  ChainBnb search(ctx, max_nodes);
  const bool found = search.run();
  if (search.aborted()) {
    return common::Status::not_converged("chain B&B hit the node cap");
  }
  if (!found) {
    return common::Status::infeasible("no re-execution subset meets deadline and reliability");
  }
  auto out = build_solution(ctx, search.best_set(), search.best_inner());
  out.subsets_explored = search.nodes();
  return out;
}

}  // namespace easched::tricrit
