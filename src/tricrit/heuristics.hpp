#pragma once
// TRI-CRIT heuristics for general mapped DAGs (claim C6).
//
// The paper develops "two sets of heuristics" and reports that they are
// complementary: one family excels on linear-chain-like DAGs, the other on
// highly-parallelizable DAGs, and taking the best of the two "always gives
// the best result over all simulations". The two families here implement
// exactly those two ideas:
//
//  * heuristic_uniform_reexec (A, chain-centric): slow every task equally
//    so the whole deadline is consumed (the optimal chain move), then let
//    each task independently decide single vs. re-executed execution
//    within its allotted window — the linear-chain strategy of claim C4
//    lifted to DAGs.
//
//  * heuristic_slack_reexec (B, parallelism-centric): start from the
//    all-single continuous optimum, then walk tasks in decreasing
//    scheduling slack (ALAP - ASAP) and re-execute those whose slack pays
//    for the second execution — "highly parallelizable tasks should be
//    preferred when allocating time slots for re-execution" (section III).
//
//  * heuristic_best_of: min-energy of the two (the paper's recommended
//    combination).
//
// Both heuristics optionally finish with a *polish* step: one continuous
// re-solve (interior point) with the chosen re-execution set fixed, which
// redistributes time globally — re-executed tasks behave like tasks of
// effective weight 2w with energy coefficient (2w)^3 and a per-task speed
// floor f_inf instead of frel.

#include <vector>

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "sched/mapping.hpp"
#include "tricrit/reexec.hpp"

namespace easched::tricrit {

struct HeuristicOptions {
  bool polish = true;  ///< run the fixed-mode continuous re-solve at the end
};

/// Optimal continuous speeds for a *fixed* re-execution set: barrier
/// interior-point on the convex program with effective weights. This is
/// the inner optimiser the NP-hardness leaves tractable once the subset is
/// chosen. kInfeasible when the set cannot meet the deadline.
common::Result<TriCritSolution> continuous_with_modes(const graph::Dag& dag,
                                                      const sched::Mapping& mapping,
                                                      double deadline,
                                                      const model::ReliabilityModel& rel,
                                                      const model::SpeedModel& speeds,
                                                      const std::vector<bool>& re_exec);

/// Heuristic A — uniform slowdown, then per-task re-execution choice.
common::Result<TriCritSolution> heuristic_uniform_reexec(const graph::Dag& dag,
                                                         const sched::Mapping& mapping,
                                                         double deadline,
                                                         const model::ReliabilityModel& rel,
                                                         const model::SpeedModel& speeds,
                                                         const HeuristicOptions& options = {});

/// Heuristic B — slack-ordered re-execution from the all-single optimum.
common::Result<TriCritSolution> heuristic_slack_reexec(const graph::Dag& dag,
                                                       const sched::Mapping& mapping,
                                                       double deadline,
                                                       const model::ReliabilityModel& rel,
                                                       const model::SpeedModel& speeds,
                                                       const HeuristicOptions& options = {});

/// Heuristic C — best-improvement greedy with full continuous re-solves:
/// the chain strategy (C4) lifted verbatim to DAGs. Each step evaluates
/// every candidate re-execution with a fresh interior-point solve and
/// adopts the best improvement; stops at a local optimum. O(n^2) IPM
/// solves — the thorough (slow) reference the cheap families are measured
/// against; practical up to a few dozen tasks.
common::Result<TriCritSolution> heuristic_greedy_reexec(const graph::Dag& dag,
                                                        const sched::Mapping& mapping,
                                                        double deadline,
                                                        const model::ReliabilityModel& rel,
                                                        const model::SpeedModel& speeds);

/// BEST-OF combination (the paper's recommended candidate).
common::Result<TriCritSolution> heuristic_best_of(const graph::Dag& dag,
                                                  const sched::Mapping& mapping,
                                                  double deadline,
                                                  const model::ReliabilityModel& rel,
                                                  const model::SpeedModel& speeds,
                                                  const HeuristicOptions& options = {});

}  // namespace easched::tricrit
