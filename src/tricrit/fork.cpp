#include "tricrit/fork.hpp"

#include <cmath>
#include <limits>

#include "graph/analysis.hpp"
#include "opt/scalar.hpp"

namespace easched::tricrit {

common::Result<ForkSolution> solve_fork_tricrit(const graph::Dag& dag, double deadline,
                                                const model::ReliabilityModel& rel,
                                                const model::SpeedModel& speeds,
                                                int grid) {
  if (speeds.kind() != model::SpeedModelKind::kContinuous) {
    return common::Status::unsupported("fork TRI-CRIT solver uses the CONTINUOUS model");
  }
  if (!graph::is_fork(dag)) return common::Status::unsupported("graph is not a fork");
  EASCHED_CHECK(deadline > 0.0);

  const graph::TaskId src = dag.sources().front();
  const double w0 = dag.weight(src);
  std::vector<graph::TaskId> children;
  children.reserve(static_cast<std::size_t>(dag.num_tasks() - 1));
  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) {
    if (t != src) children.push_back(t);
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto total_energy = [&](double t0) -> double {
    auto source = best_choice(w0, t0, rel, speeds);
    if (!source.is_ok()) return kInf;
    const double window = deadline - t0;
    if (window <= 0.0) return kInf;
    double e = source.value().energy;
    for (graph::TaskId c : children) {
      auto choice = best_choice(dag.weight(c), window, rel, speeds);
      if (!choice.is_ok()) return kInf;
      e += choice.value().energy;
    }
    return e;
  };

  // Source needs at least w0/fmax (single at fmax); it never benefits from
  // more than 2*w0/max(f_inf, fmin) (slowest re-execution). Children need
  // at least max_c w_c / fmax.
  const double t0_lo = std::max(w0 / speeds.fmax(), 1e-12 * deadline);
  double max_child = 0.0;
  for (graph::TaskId c : children) max_child = std::max(max_child, dag.weight(c));
  const double t0_hi = deadline - max_child / speeds.fmax();
  if (t0_lo > t0_hi) {
    return common::Status::infeasible("fork: even all-fmax misses the deadline");
  }
  if (!std::isfinite(total_energy(t0_hi)) && !std::isfinite(total_energy(t0_lo)) &&
      !std::isfinite(total_energy(0.5 * (t0_lo + t0_hi)))) {
    // Cheap pre-check; the grid search below still verifies thoroughly.
  }

  const double t0 = opt::grid_refine_minimize(total_energy, t0_lo, t0_hi, grid);
  if (!std::isfinite(total_energy(t0))) {
    return common::Status::infeasible(
        "fork: no source split meets deadline + reliability constraints");
  }

  ForkSolution out{TriCritSolution(dag.num_tasks()), t0};
  auto source = best_choice(w0, t0, rel, speeds);
  apply_choice(out.solution, src, source.value());
  const double window = deadline - source.value().time_used;
  for (graph::TaskId c : children) {
    auto choice = best_choice(dag.weight(c), window, rel, speeds);
    EASCHED_CHECK_MSG(choice.is_ok(), "fork: child infeasible after feasible t0");
    apply_choice(out.solution, c, choice.value());
  }
  return out;
}

}  // namespace easched::tricrit
