#pragma once
// TRI-CRIT on forks: the paper's polynomial-time algorithm (claim C5).
//
// "We were also able to find a polynomial time algorithm to solve the
// problem for a fork ... based on a totally different strategy than for
// linear chains: those highly parallelizable tasks should be preferred
// when allocating time slots for re-execution or deceleration."
//
// Structure exploited: with each child on its own processor, once the
// source completion time t0 is fixed, every child is an *independent*
// single-task subproblem in the window D - t0, and the best per-child
// decision (single vs re-executed, and the speed) has a closed form
// (tricrit/reexec.hpp). The total energy profile
//     E(t0) = E_source(t0) + sum_children E_child(D - t0)
// is piecewise smooth with breakpoints where tasks flip between single and
// double execution; a grid+golden-section search over t0 solves it to
// numerical accuracy in O((n + grid) log) — polynomial, as the paper
// claims (their exact algorithm sorts the O(n) breakpoints instead).

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "tricrit/reexec.hpp"

namespace easched::tricrit {

struct ForkSolution {
  TriCritSolution solution;
  double source_time = 0.0;  ///< optimal worst-case completion time of T0
};

/// Solves TRI-CRIT on a fork graph (one source, independent children),
/// assuming one processor per task (the paper's setting for this result).
common::Result<ForkSolution> solve_fork_tricrit(const graph::Dag& dag, double deadline,
                                                const model::ReliabilityModel& rel,
                                                const model::SpeedModel& speeds,
                                                int grid = 512);

}  // namespace easched::tricrit
