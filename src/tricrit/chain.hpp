#pragma once
// TRI-CRIT on a single-processor linear chain (claims C3 and C4).
//
// The paper: "We show that this problem is NP-hard even in the simple case
// when there is only one processor ... However, we were able to find an
// optimal strategy for the case of a linear chain: first slow the
// execution of all tasks equally, then choose the tasks to be re-executed."
//
// * solve_chain_exact — reference optimum by enumerating every re-execution
//   subset (2^n, NP-hard problem) and solving the inner continuous
//   allocation by water-filling:
//       minimize sum_{i not in S} w_i^3/t_i^2 + sum_{i in S} 8 w_i^3/t_i^2
//       s.t. sum t_i <= D,
//            singles: t_i in [w_i/fmax, w_i/max(frel,fmin)]
//            doubles: t_i in [2w_i/fmax, 2w_i/max(f_inf_i,fmin)]
//   (re-executed tasks run both executions at the same speed g = 2w/t).
// * solve_chain_greedy — the paper's strategy: start from the all-single
//   water-filling and greedily add the re-execution with the best energy
//   improvement until none improves.

#include <vector>

#include "common/status.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "tricrit/reexec.hpp"

namespace easched::tricrit {

struct ChainSolution {
  TriCritSolution solution;
  std::vector<bool> re_exec_set;   ///< which tasks are re-executed
  long long subsets_explored = 0;  ///< exact solver only
};

/// Exact optimum by subset enumeration; kUnsupported for n > max_tasks
/// (the problem is NP-hard; this is the small-instance oracle).
common::Result<ChainSolution> solve_chain_exact(const std::vector<double>& weights,
                                                double deadline,
                                                const model::ReliabilityModel& rel,
                                                const model::SpeedModel& speeds,
                                                int max_tasks = 22);

/// The paper's chain strategy (C4) as a greedy heuristic.
common::Result<ChainSolution> solve_chain_greedy(const std::vector<double>& weights,
                                                 double deadline,
                                                 const model::ReliabilityModel& rel,
                                                 const model::SpeedModel& speeds);

/// Exact optimum by branch & bound over the re-execution subset. The
/// bound relaxes every undecided task to a "super-mode" (the cheaper
/// energy curve with the loosest time box), so the water-filling value of
/// the relaxation lower-bounds every completion — pushing the exact
/// frontier well past the 2^n enumeration of solve_chain_exact.
/// kNotConverged when max_nodes is exhausted.
common::Result<ChainSolution> solve_chain_bnb(const std::vector<double>& weights,
                                              double deadline,
                                              const model::ReliabilityModel& rel,
                                              const model::SpeedModel& speeds,
                                              long long max_nodes = 5'000'000);

}  // namespace easched::tricrit
