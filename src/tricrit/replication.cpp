#include "tricrit/replication.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/analysis.hpp"
#include "opt/scalar.hpp"

namespace easched::tricrit {

namespace {

FtChoice from_exec_choice(const ExecChoice& c) {
  FtChoice out;
  out.strategy = c.re_executed ? FtStrategy::kReExecution : FtStrategy::kSingle;
  out.speed = c.speed;
  out.attempts = c.re_executed ? 2 : 1;
  out.energy = c.energy;
  out.time = c.time_used;
  out.processors = 1;
  return out;
}

}  // namespace

common::Result<FtChoice> best_replication(double weight, double budget, int replicas,
                                          const model::ReliabilityModel& rel,
                                          const model::SpeedModel& speeds) {
  EASCHED_CHECK_MSG(replicas >= 2, "replication needs at least two replicas");
  if (weight == 0.0) {
    return FtChoice{FtStrategy::kReplication, speeds.fmin(), replicas, 0.0, 0.0, replicas};
  }
  if (budget <= 0.0) return common::Status::infeasible("no time budget");
  auto fm = rel.f_multi(weight, replicas);
  if (!fm.is_ok()) return fm.status();
  const double floor = std::max(fm.value(), speeds.fmin());
  // All replicas run in parallel: wall-clock time is a single execution.
  const double g = std::max(weight / budget, floor);
  if (g > speeds.fmax() * (1.0 + 1e-12)) {
    return common::Status::infeasible("replication needs speed above fmax");
  }
  const double gc = std::min(g, speeds.fmax());
  FtChoice out;
  out.strategy = FtStrategy::kReplication;
  out.speed = gc;
  out.attempts = replicas;
  out.energy = static_cast<double>(replicas) * model::execution_energy(weight, gc);
  out.time = weight / gc;
  out.processors = replicas;
  return out;
}

common::Result<FtChoice> best_ft_choice(double weight, double budget, int max_replicas,
                                        const model::ReliabilityModel& rel,
                                        const model::SpeedModel& speeds) {
  common::Result<FtChoice> best = common::Status::infeasible("nothing fits the budget");
  auto consider = [&](common::Result<FtChoice> candidate) {
    if (!candidate.is_ok()) return;
    if (!best.is_ok() || candidate.value().energy < best.value().energy) {
      best = std::move(candidate);
    }
  };
  if (auto s = best_single(weight, budget, rel, speeds); s.is_ok()) {
    consider(from_exec_choice(s.value()));
  }
  if (auto d = best_double(weight, budget, rel, speeds); d.is_ok()) {
    consider(from_exec_choice(d.value()));
  }
  for (int k = 2; k <= max_replicas; ++k) {
    consider(best_replication(weight, budget, k, rel, speeds));
  }
  return best;
}

common::Result<ForkFtSolution> solve_fork_ft(const graph::Dag& dag, double deadline,
                                             int processors,
                                             const model::ReliabilityModel& rel,
                                             const model::SpeedModel& speeds,
                                             int max_replicas, int grid) {
  if (speeds.kind() != model::SpeedModelKind::kContinuous) {
    return common::Status::unsupported("solve_fork_ft uses the CONTINUOUS model");
  }
  if (!graph::is_fork(dag)) return common::Status::unsupported("graph is not a fork");
  EASCHED_CHECK(deadline > 0.0);
  EASCHED_CHECK(max_replicas >= 2);
  const int n = dag.num_tasks();
  if (processors < n) {
    return common::Status::invalid("need at least one processor per task");
  }
  const graph::TaskId src = dag.sources().front();
  std::vector<graph::TaskId> children;
  children.reserve(static_cast<std::size_t>(n - 1));
  for (graph::TaskId t = 0; t < n; ++t) {
    if (t != src) children.push_back(t);
  }
  const int idle_pool = processors - n;  // processors free for replicas

  constexpr double kInf = std::numeric_limits<double>::infinity();

  // For a fixed source completion time, choose every task's strategy.
  // Replica slots are a shared budget: assign them greedily by marginal
  // energy gain per slot (the inner problem is knapsack-like; the greedy
  // is a documented approximation, exact for the single-slot case).
  auto plan_at = [&](double t0, ForkFtSolution* out) -> double {
    const double window = deadline - t0;
    if (window <= 0.0) return kInf;
    std::vector<FtChoice> choice(static_cast<std::size_t>(n));
    // Baseline: best non-replicating choice per task.
    for (graph::TaskId t = 0; t < n; ++t) {
      const double budget = t == src ? t0 : window;
      auto s = best_single(dag.weight(t), budget, rel, speeds);
      auto d = best_double(dag.weight(t), budget, rel, speeds);
      if (!s.is_ok() && !d.is_ok()) return kInf;
      if (!s.is_ok()) {
        choice[static_cast<std::size_t>(t)] = from_exec_choice(d.value());
      } else if (!d.is_ok() || s.value().energy <= d.value().energy) {
        choice[static_cast<std::size_t>(t)] = from_exec_choice(s.value());
      } else {
        choice[static_cast<std::size_t>(t)] = from_exec_choice(d.value());
      }
    }
    // Greedy replica upgrades.
    int pool = idle_pool;
    for (;;) {
      int best_task = -1;
      FtChoice best_upgrade;
      double best_gain_per_slot = 0.0;
      for (graph::TaskId t = 0; t < n; ++t) {
        if (choice[static_cast<std::size_t>(t)].strategy == FtStrategy::kReplication) {
          continue;  // one upgrade per task
        }
        const double budget = t == src ? t0 : window;
        for (int k = 2; k <= max_replicas; ++k) {
          const int slots = k - 1;
          if (slots > pool) break;
          auto rep = best_replication(dag.weight(t), budget, k, rel, speeds);
          if (!rep.is_ok()) continue;
          const double gain = choice[static_cast<std::size_t>(t)].energy -
                              rep.value().energy;
          if (gain <= 1e-12) continue;
          const double per_slot = gain / static_cast<double>(slots);
          if (per_slot > best_gain_per_slot) {
            best_gain_per_slot = per_slot;
            best_task = t;
            best_upgrade = rep.value();
          }
        }
      }
      if (best_task < 0) break;
      pool -= best_upgrade.processors - 1;
      choice[static_cast<std::size_t>(best_task)] = best_upgrade;
    }
    double energy = 0.0;
    for (const auto& c : choice) energy += c.energy;
    if (out) {
      out->choices = std::move(choice);
      out->energy = energy;
      out->source_time = t0;
      out->replicas_used = idle_pool - pool;
    }
    return energy;
  };

  const double w0 = dag.weight(src);
  double max_child = 0.0;
  for (graph::TaskId c : children) max_child = std::max(max_child, dag.weight(c));
  const double t0_lo = std::max(w0 / speeds.fmax(), 1e-12 * deadline);
  const double t0_hi = deadline - max_child / speeds.fmax();
  if (t0_lo > t0_hi) {
    return common::Status::infeasible("fork: even all-fmax misses the deadline");
  }
  const double t0 = opt::grid_refine_minimize(
      [&](double x) { return plan_at(x, nullptr); }, t0_lo, t0_hi, grid);
  ForkFtSolution out;
  if (!std::isfinite(plan_at(t0, &out))) {
    return common::Status::infeasible("fork: no feasible strategy assignment");
  }
  return out;
}

}  // namespace easched::tricrit
