#pragma once
// Replication, and the replication/re-execution trade-off — the paper's
// closing research direction (section V):
//
//   "More efficient solutions to the tri-criteria optimization problem
//    (deadline, energy, reliability) could be achieved through combining
//    replication with re-execution. A promising (and ambitious) research
//    direction would be to search for the best trade-offs that can be
//    achieved between these techniques that both increase reliability, but
//    whose impact on execution time and energy consumption is very
//    different."
//
// Semantics (following [Assayad, Girault, Kalla]):
//   * replication degree k runs the task on k processors SIMULTANEOUSLY at
//     a common speed g: wall-clock time w/g, energy k*w*g^2 (all replicas
//     always run), reliability 1 - lambda(g)^k;
//   * re-execution runs the second attempt on the SAME processor only
//     after a failure, but worst-case provisioning charges both: time
//     2w/g, energy 2*w*g^2, reliability 1 - lambda(g)^2.
// With equal redundancy k = 2 the two consume identical energy and give
// identical reliability — replication is purely a time-for-processors
// trade, which is exactly the "very different impact on execution time"
// the paper points at. This module quantifies that trade-off.

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "tricrit/reexec.hpp"

namespace easched::tricrit {

/// Fault-tolerance strategy for one task.
enum class FtStrategy { kSingle, kReExecution, kReplication };

constexpr const char* to_string(FtStrategy s) noexcept {
  switch (s) {
    case FtStrategy::kSingle: return "single";
    case FtStrategy::kReExecution: return "re-execution";
    case FtStrategy::kReplication: return "replication";
  }
  return "unknown";
}

/// One task's fault-tolerance decision.
struct FtChoice {
  FtStrategy strategy = FtStrategy::kSingle;
  double speed = 0.0;   ///< common speed of all attempts
  int attempts = 1;     ///< executions (re-exec) or replicas (replication)
  double energy = 0.0;  ///< attempts * w * speed^2 (all attempts charged)
  double time = 0.0;    ///< wall-clock: w/speed (replication) else attempts*w/speed
  int processors = 1;   ///< processors occupied simultaneously
};

/// Best replication of degree `replicas` within the wall-clock budget:
/// g = max(w/budget, f_multi(w, replicas)); kInfeasible when g > fmax.
common::Result<FtChoice> best_replication(double weight, double budget, int replicas,
                                          const model::ReliabilityModel& rel,
                                          const model::SpeedModel& speeds);

/// Minimum-energy choice among single / re-execution / replication degrees
/// 2..max_replicas, given the wall-clock budget and a simultaneous
/// processor cap. kInfeasible when nothing fits.
common::Result<FtChoice> best_ft_choice(double weight, double budget, int max_replicas,
                                        const model::ReliabilityModel& rel,
                                        const model::SpeedModel& speeds);

/// TRI-CRIT on a fork where children may replicate onto idle processors
/// (the combined replication + re-execution solver the paper calls for).
/// `processors` bounds the total simultaneous replicas across children;
/// children are assumed mapped one-per-processor as in solve_fork_tricrit.
struct ForkFtSolution {
  std::vector<FtChoice> choices;  ///< indexed by task id
  double energy = 0.0;
  double source_time = 0.0;
  int replicas_used = 0;  ///< extra processors consumed by replication
};

common::Result<ForkFtSolution> solve_fork_ft(const graph::Dag& dag, double deadline,
                                             int processors,
                                             const model::ReliabilityModel& rel,
                                             const model::SpeedModel& speeds,
                                             int max_replicas = 3, int grid = 512);

}  // namespace easched::tricrit
