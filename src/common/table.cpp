#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/status.hpp"

namespace easched::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  EASCHED_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  EASCHED_CHECK_MSG(cells.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        for (std::size_t pad = row[c].size(); pad < width[c] + 2; ++pad) os << ' ';
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto field = [&](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      os << s;
      return;
    }
    os << '"';
    for (char ch : s) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto line = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      field(row[c]);
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

std::string format_g(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string format_ratio(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.4fx", v);
  return buf;
}

std::string format_pct(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace easched::common
