#pragma once
// Plain-text table printer used by every bench binary, so experiment
// output has one consistent, diffable format (and an optional CSV dump).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace easched::common {

/// Column-aligned text table.
///
/// Usage:
///   Table t({"graph", "n", "E_closed", "E_ipm", "rel.err"});
///   t.add_row({"fork", "10", format_g(e1), format_g(e2), format_g(err)});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Pretty-prints with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with %.6g (bench-friendly compact form).
std::string format_g(double v);
/// Formats a double with fixed decimals.
std::string format_fixed(double v, int decimals);
/// Formats an integer count.
std::string format_int(long long v);
/// Formats a ratio as "1.2345x".
std::string format_ratio(double v);
/// Formats a fraction as a percentage "12.3%".
std::string format_pct(double fraction, int decimals = 1);

}  // namespace easched::common
