#pragma once
// Clang thread-safety capability annotations.
//
// These macros make the repo's locking discipline machine-checkable: a
// member declared EASCHED_GUARDED_BY(mutex_) may only be touched while
// mutex_ is held, a function declared EASCHED_REQUIRES(mutex_) may only
// be called with it held, and scripts/check.sh builds the api/engine/
// frontier/store layers with -Wthread-safety promoted to an error under
// EASCHED_WERROR_API. On compilers without the capability attributes
// (GCC) every macro expands to nothing, so annotated code stays portable.
//
// The analysis only understands annotated lock types — libstdc++'s
// std::mutex carries no capability attributes — so concurrent code uses
// the annotated wrappers in common/mutex.hpp (common::Mutex,
// common::MutexLock, common::CondVar) instead of std::mutex directly.
//
// Macro cheat-sheet (see the Clang "Thread Safety Analysis" docs):
//   EASCHED_CAPABILITY(x)        class is a capability (a lock)
//   EASCHED_SCOPED_CAPABILITY    RAII class that acquires/releases one
//   EASCHED_GUARDED_BY(m)        member readable/writable only under m
//   EASCHED_PT_GUARDED_BY(m)     pointee guarded by m (pointer itself free)
//   EASCHED_REQUIRES(m...)       caller must hold m
//   EASCHED_ACQUIRE(m...)        function acquires m and does not release
//   EASCHED_RELEASE(m...)        function releases m
//   EASCHED_TRY_ACQUIRE(b, m...) acquires m iff the return value is b
//   EASCHED_EXCLUDES(m...)       caller must NOT hold m (anti-deadlock)
//   EASCHED_ASSERT_CAPABILITY(m) runtime assertion that m is held
//   EASCHED_RETURN_CAPABILITY(m) function returns a reference to m
//   EASCHED_NO_THREAD_SAFETY_ANALYSIS  opt a function out (justify it!)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define EASCHED_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef EASCHED_THREAD_ANNOTATION
#define EASCHED_THREAD_ANNOTATION(x)  // no-op on GCC and pre-capability Clang
#endif

#define EASCHED_CAPABILITY(x) EASCHED_THREAD_ANNOTATION(capability(x))
#define EASCHED_SCOPED_CAPABILITY EASCHED_THREAD_ANNOTATION(scoped_lockable)
#define EASCHED_GUARDED_BY(x) EASCHED_THREAD_ANNOTATION(guarded_by(x))
#define EASCHED_PT_GUARDED_BY(x) EASCHED_THREAD_ANNOTATION(pt_guarded_by(x))
#define EASCHED_ACQUIRED_BEFORE(...) \
  EASCHED_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EASCHED_ACQUIRED_AFTER(...) \
  EASCHED_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define EASCHED_REQUIRES(...) \
  EASCHED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EASCHED_REQUIRES_SHARED(...) \
  EASCHED_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EASCHED_ACQUIRE(...) \
  EASCHED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EASCHED_ACQUIRE_SHARED(...) \
  EASCHED_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define EASCHED_RELEASE(...) \
  EASCHED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EASCHED_RELEASE_SHARED(...) \
  EASCHED_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define EASCHED_TRY_ACQUIRE(...) \
  EASCHED_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EASCHED_EXCLUDES(...) EASCHED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define EASCHED_ASSERT_CAPABILITY(x) EASCHED_THREAD_ANNOTATION(assert_capability(x))
#define EASCHED_RETURN_CAPABILITY(x) EASCHED_THREAD_ANNOTATION(lock_returned(x))
#define EASCHED_NO_THREAD_SAFETY_ANALYSIS \
  EASCHED_THREAD_ANNOTATION(no_thread_safety_analysis)
