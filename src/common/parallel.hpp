#pragma once
// Minimal data-parallel building blocks over std::thread.
//
// easched is a scheduling *library*; its own hot loops (Monte-Carlo fault
// injection, parameter sweeps in benches, subset enumeration) are
// embarrassingly parallel. parallel_for provides deterministic chunking so
// that per-chunk RNG substreams give run-to-run reproducible results
// independent of the number of worker threads.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace easched::common {

/// Number of worker threads used by parallel_for (>= 1).
/// Defaults to std::thread::hardware_concurrency(), clamped to [1, 64].
std::size_t default_thread_count() noexcept;

/// Runs body(i) for i in [0, n) across worker threads.
///
/// Work is split into contiguous chunks; `body` must be safe to call
/// concurrently for distinct i. Exceptions thrown by `body` propagate to
/// the caller (the first one observed; remaining work is still joined).
/// With threads == 1 (or n small) runs inline on the calling thread.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Runs body(chunk_index, begin, end) over a deterministic chunking of
/// [0, n) into exactly `chunks` contiguous ranges (some possibly empty).
///
/// The chunk decomposition depends only on (n, chunks) — not on the thread
/// count — so seeding an RNG substream per chunk_index yields reproducible
/// parallel Monte-Carlo runs.
void parallel_chunks(std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                     std::size_t threads = 0);

/// Persistent worker pool: the serving-path counterpart of the transient
/// parallel_for threads. Threads are spawned once and reused for every
/// submitted task, so a long-lived server (the engine façade) pays thread
/// start-up once instead of per request.
///
/// Two kinds of work share the pool:
///  * submit(fn, priority) — an independent task (a job). Higher priority
///    runs earlier; within a priority, FIFO. Tasks never run concurrently
///    with themselves and there is no result plumbing here — callers
///    (engine::JobHandle) layer their own completion state on top.
///  * parallel(n, body) — a blocking data-parallel region, callable both
///    from outside the pool and from *inside* a running task. The calling
///    thread participates in executing the iterations (claiming chunks
///    exactly like the pool helpers do), so nested use can never deadlock
///    even on a single-threaded pool, and idle workers join in through
///    max-priority helper tasks.
///
/// Exceptions thrown by a submitted task are swallowed after being routed
/// to the task's own catch scope (submit wraps nothing — the caller's fn
/// must handle its errors; engine jobs convert them to Status). Exceptions
/// from parallel() bodies propagate to the parallel() caller, matching
/// parallel_for.
///
/// The destructor finishes every already-submitted task, then joins.
class WorkerPool {
 public:
  /// `threads` == 0 uses default_thread_count(). At least 1.
  explicit WorkerPool(std::size_t threads = 0);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Cumulative worker activity, for utilization gauges. `tasks` counts
  /// every dequeued task (submitted jobs *and* the max-priority helper
  /// shifts parallel() regions enqueue); `busy_ms` is the summed
  /// steady_clock time workers spent inside them. The caller thread's
  /// own participation in parallel() is not pool time and is not
  /// counted. Approximate by design — counters are relaxed atomics.
  struct PoolStats {
    std::uint64_t tasks = 0;
    double busy_ms = 0.0;
  };
  PoolStats stats() const noexcept {
    return PoolStats{tasks_done_.load(std::memory_order_relaxed),
                     static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) / 1e6};
  }

  /// Enqueues one task. Thread-safe; may be called from inside a task.
  void submit(std::function<void()> fn, int priority = 0) EASCHED_EXCLUDES(mutex_);

  /// Runs body(i) for i in [0, n), returning when all iterations finished.
  /// The caller executes iterations itself while idle pool workers help;
  /// results are independent of who ran what (body must be safe for
  /// concurrent distinct i, as with parallel_for). The first exception a
  /// body throws is rethrown here after every iteration completed.
  void parallel(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  /// Pops the highest-priority task; empty function when stopping and
  /// drained.
  std::function<void()> next_task() EASCHED_EXCLUDES(mutex_);

  /// Key = (-priority, sequence): map order is execution order. The
  /// negated priority is widened to 64 bits so every int priority —
  /// INT_MIN included — negates without overflow.
  using TaskKey = std::pair<long long, std::uint64_t>;
  mutable Mutex mutex_;
  CondVar ready_;
  std::map<TaskKey, std::function<void()>> queue_ EASCHED_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ EASCHED_GUARDED_BY(mutex_) = 0;
  bool stopping_ EASCHED_GUARDED_BY(mutex_) = false;
  /// Worker activity counters for stats(); relaxed — observability only.
  std::atomic<std::uint64_t> tasks_done_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  /// Only mutated in the constructor (before any worker can observe the
  /// pool) and joined in the destructor; size() reads it lock-free.
  std::vector<std::thread> workers_;
};

}  // namespace easched::common
