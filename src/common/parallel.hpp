#pragma once
// Minimal data-parallel building blocks over std::thread.
//
// easched is a scheduling *library*; its own hot loops (Monte-Carlo fault
// injection, parameter sweeps in benches, subset enumeration) are
// embarrassingly parallel. parallel_for provides deterministic chunking so
// that per-chunk RNG substreams give run-to-run reproducible results
// independent of the number of worker threads.

#include <cstddef>
#include <functional>

namespace easched::common {

/// Number of worker threads used by parallel_for (>= 1).
/// Defaults to std::thread::hardware_concurrency(), clamped to [1, 64].
std::size_t default_thread_count() noexcept;

/// Runs body(i) for i in [0, n) across worker threads.
///
/// Work is split into contiguous chunks; `body` must be safe to call
/// concurrently for distinct i. Exceptions thrown by `body` propagate to
/// the caller (the first one observed; remaining work is still joined).
/// With threads == 1 (or n small) runs inline on the calling thread.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

/// Runs body(chunk_index, begin, end) over a deterministic chunking of
/// [0, n) into exactly `chunks` contiguous ranges (some possibly empty).
///
/// The chunk decomposition depends only on (n, chunks) — not on the thread
/// count — so seeding an RNG substream per chunk_index yields reproducible
/// parallel Monte-Carlo runs.
void parallel_chunks(std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                     std::size_t threads = 0);

}  // namespace easched::common
