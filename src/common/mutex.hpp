#pragma once
// Annotated locking primitives for the concurrent layers.
//
// Clang's thread-safety analysis only tracks lock types that carry
// capability attributes, and libstdc++'s std::mutex / std::lock_guard do
// not — so guarded members protected by a bare std::mutex would warn on
// every access, locked or not. These thin wrappers restore the contract:
//
//   common::Mutex      an annotated std::mutex (a "mutex" capability)
//   common::MutexLock  annotated lock_guard-style RAII scope
//   common::CondVar    condition variable whose wait() REQUIRES the
//                      associated Mutex, built on condition_variable_any
//
// Locking rules of the repo (checked by the annotations):
//
//  * A solver never runs under any lock — SolveCache::solve_shared and
//    SolveStore release every mutex before invoking api::solve.
//  * Lock order, where two locks can nest:
//      SolveCache shard mutex  ->  InstanceInterner mutex
//      SolveCache shard mutex  ->  SolveStore mutex (spill path releases
//                                  the shard first; store load takes the
//                                  shard under for_each's *unlocked* walk)
//    No path takes a shard mutex while holding the interner or store
//    mutex, and WorkerPool / JobState mutexes never nest with any of
//    them (pool tasks take cache/store locks only after dequeueing).
//  * Condition-variable waits loop on the predicate explicitly
//    (`while (!pred) cv.wait(lock);`) so the guarded reads stay inside
//    the analysed critical section.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace easched::common {

/// std::mutex with the "mutex" capability attribute. Same cost, same
/// semantics; the type exists purely so -Wthread-safety can reason about
/// what it protects.
class EASCHED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EASCHED_ACQUIRE() { m_.lock(); }
  void unlock() EASCHED_RELEASE() { m_.unlock(); }
  bool try_lock() EASCHED_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock scope over a Mutex (the annotated stand-in for
/// std::lock_guard). Non-copyable, non-movable; always unlocks.
class EASCHED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) EASCHED_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() EASCHED_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to common::Mutex. wait() requires the mutex
/// held (it is released while blocked and re-acquired before returning,
/// exactly like std::condition_variable) — callers loop on their
/// predicate around it so guarded reads stay under the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified, re-acquires.
  /// The capability is held on entry and on return, which is what the
  /// REQUIRES annotation states; the transient release inside
  /// condition_variable_any is invisible to callers by design.
  void wait(Mutex& mutex) EASCHED_REQUIRES(mutex) { cv_.wait_on(mutex); }

  /// Timed wait: releases `mutex`, blocks until notified or `deadline`
  /// passes, re-acquires. Returns false on timeout. Callers loop on their
  /// predicate exactly as with wait() — a timeout only means "re-check
  /// now", never "the predicate holds".
  bool wait_until(Mutex& mutex, std::chrono::steady_clock::time_point deadline)
      EASCHED_REQUIRES(mutex) {
    return cv_.wait_on_until(mutex, deadline);
  }

  void notify_one() noexcept { cv_.cv.notify_one(); }
  void notify_all() noexcept { cv_.cv.notify_all(); }

 private:
  /// condition_variable_any unlocks/relocks the Mutex through its
  /// Lockable interface; wait_on is opted out of the analysis because
  /// the unlock/lock pair balances before it returns.
  struct Waiter {
    std::condition_variable_any cv;
    void wait_on(Mutex& mutex) EASCHED_NO_THREAD_SAFETY_ANALYSIS { cv.wait(mutex); }
    bool wait_on_until(Mutex& mutex, std::chrono::steady_clock::time_point deadline)
        EASCHED_NO_THREAD_SAFETY_ANALYSIS {
      return cv.wait_until(mutex, deadline) == std::cv_status::no_timeout;
    }
  };
  Waiter cv_;
};

}  // namespace easched::common
