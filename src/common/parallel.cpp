#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

namespace easched::common {

std::size_t default_thread_count() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hc == 0 ? 1 : hc, 1, 64);
}

namespace {

// Runs fn(w) on `workers` threads (worker index w in [0, workers)), joining
// all of them and rethrowing the first captured exception.
void run_workers(std::size_t workers, const std::function<void(std::size_t)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::exception_ptr first_error;
  std::atomic<bool> has_error{false};
  std::atomic<int> error_guard{0};
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        fn(w);
      } catch (...) {
        // Record only the first exception; losing later ones is acceptable
        // because all of them indicate the same failed parallel region.
        if (error_guard.fetch_add(1) == 0) {
          first_error = std::current_exception();
          has_error.store(true);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (has_error.load()) std::rethrow_exception(first_error);
}

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  std::size_t workers = threads == 0 ? default_thread_count() : threads;
  workers = std::min(workers, n);
  if (workers <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  constexpr std::size_t kGrain = 16;
  run_workers(workers, [&](std::size_t) {
    for (;;) {
      const std::size_t begin = next.fetch_add(kGrain);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + kGrain, n);
      for (std::size_t i = begin; i < end; ++i) body(i);
    }
  });
}

WorkerPool::WorkerPool(std::size_t threads) {
  std::size_t workers = threads == 0 ? default_thread_count() : threads;
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkerPool::submit(std::function<void()> fn, int priority) {
  {
    MutexLock lock(mutex_);
    queue_.emplace(TaskKey{-static_cast<long long>(priority), next_seq_++},
                   std::move(fn));
  }
  ready_.notify_one();
}

std::function<void()> WorkerPool::next_task() {
  MutexLock lock(mutex_);
  while (!stopping_ && queue_.empty()) ready_.wait(mutex_);
  if (queue_.empty()) return {};  // stopping and drained
  auto it = queue_.begin();
  std::function<void()> fn = std::move(it->second);
  queue_.erase(it);
  return fn;
}

void WorkerPool::worker_loop() {
  // Tasks queued before the stop request still run: the destructor drains
  // the queue rather than abandoning accepted work (cancellation is the
  // job layer's business, not the pool's).
  while (std::function<void()> task = next_task()) {
    const auto begin = std::chrono::steady_clock::now();
    task();
    busy_ns_.fetch_add(
        static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                       std::chrono::steady_clock::now() - begin)
                                       .count()),
        std::memory_order_relaxed);
    tasks_done_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

/// Shared state of one WorkerPool::parallel region. Helpers hold it via
/// shared_ptr so a helper that fires after the region completed (all
/// chunks claimed) no-ops safely even though the caller returned.
struct ParallelRegion {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;  ///< valid while
                                                           ///< chunks remain
  std::atomic<std::size_t> next{0};
  Mutex mutex;
  CondVar done_cv;
  std::size_t done EASCHED_GUARDED_BY(mutex) = 0;  ///< iterations finished
  std::exception_ptr error EASCHED_GUARDED_BY(mutex);

  /// Claims and runs chunks until none are left. Iterations count as done
  /// even when the body throws (only the first exception is kept), so the
  /// caller's completion wait can never hang on a failed region.
  void drain() {
    constexpr std::size_t kGrain = 16;
    for (;;) {
      const std::size_t begin = next.fetch_add(kGrain);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + kGrain, n);
      std::exception_ptr caught;
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*body)(i);
        } catch (...) {
          if (!caught) caught = std::current_exception();
        }
      }
      MutexLock lock(mutex);
      if (caught && !error) error = caught;
      done += end - begin;
      if (done == n) done_cv.notify_all();
    }
  }
};

}  // namespace

void WorkerPool::parallel(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || size() == 1) {
    // Nothing to fan out (or no helper could exist beyond this thread):
    // run inline; exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto region = std::make_shared<ParallelRegion>();
  region->n = n;
  region->body = &body;
  // Idle workers join through max-priority helpers: sub-work of a running
  // job always beats queued jobs, so a job's internal fan-out never
  // inverts with lower-priority whole jobs behind it.
  const std::size_t helpers = std::min(size(), (n - 1) / 16 + 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([region] { region->drain(); }, std::numeric_limits<int>::max());
  }
  region->drain();  // the caller participates — nested use cannot deadlock
  {
    MutexLock lock(region->mutex);
    while (region->done != region->n) region->done_cv.wait(region->mutex);
    if (region->error) std::rethrow_exception(region->error);
  }
}

void parallel_chunks(std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                     std::size_t threads) {
  if (n == 0 || chunks == 0) return;
  // Deterministic decomposition: chunk c covers [c*n/chunks, (c+1)*n/chunks).
  auto lo = [&](std::size_t c) { return c * n / chunks; };
  std::size_t workers = threads == 0 ? default_thread_count() : threads;
  workers = std::min(workers, chunks);
  std::atomic<std::size_t> next{0};
  run_workers(workers, [&](std::size_t) {
    for (;;) {
      const std::size_t c = next.fetch_add(1);
      if (c >= chunks) break;
      body(c, lo(c), lo(c + 1));
    }
  });
}

}  // namespace easched::common
