#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace easched::common {

std::size_t default_thread_count() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hc == 0 ? 1 : hc, 1, 64);
}

namespace {

// Runs fn(w) on `workers` threads (worker index w in [0, workers)), joining
// all of them and rethrowing the first captured exception.
void run_workers(std::size_t workers, const std::function<void(std::size_t)>& fn) {
  if (workers <= 1) {
    fn(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  std::exception_ptr first_error;
  std::atomic<bool> has_error{false};
  std::atomic<int> error_guard{0};
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        fn(w);
      } catch (...) {
        // Record only the first exception; losing later ones is acceptable
        // because all of them indicate the same failed parallel region.
        if (error_guard.fetch_add(1) == 0) {
          first_error = std::current_exception();
          has_error.store(true);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (has_error.load()) std::rethrow_exception(first_error);
}

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  std::size_t workers = threads == 0 ? default_thread_count() : threads;
  workers = std::min(workers, n);
  if (workers <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  constexpr std::size_t kGrain = 16;
  run_workers(workers, [&](std::size_t) {
    for (;;) {
      const std::size_t begin = next.fetch_add(kGrain);
      if (begin >= n) break;
      const std::size_t end = std::min(begin + kGrain, n);
      for (std::size_t i = begin; i < end; ++i) body(i);
    }
  });
}

void parallel_chunks(std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                     std::size_t threads) {
  if (n == 0 || chunks == 0) return;
  // Deterministic decomposition: chunk c covers [c*n/chunks, (c+1)*n/chunks).
  auto lo = [&](std::size_t c) { return c * n / chunks; };
  std::size_t workers = threads == 0 ? default_thread_count() : threads;
  workers = std::min(workers, chunks);
  std::atomic<std::size_t> next{0};
  run_workers(workers, [&](std::size_t) {
    for (;;) {
      const std::size_t c = next.fetch_add(1);
      if (c >= chunks) break;
      body(c, lo(c), lo(c + 1));
    }
  });
}

}  // namespace easched::common
