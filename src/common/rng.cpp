#include "common/rng.hpp"

#include <cmath>

namespace easched::common {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0ULL - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double lambda) noexcept {
  // Inverse CDF; guard against log(0) by nudging u away from 0.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

Rng Rng::split(std::uint64_t stream_index) const noexcept {
  // Mix the current state with the stream index through SplitMix64 to get
  // a decorrelated child stream. The parent is not advanced.
  SplitMix64 sm(state_[0] ^ (state_[3] + 0x632be59bd9b4e019ULL * (stream_index + 1)));
  Rng child(sm.next());
  return child;
}

}  // namespace easched::common
