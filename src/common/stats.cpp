#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace easched::common {

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double ntot = na + nb;
  mean_ += delta * nb / ntot;
  m2_ += other.m2_ + delta * delta * na * nb / ntot;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::sem() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double OnlineStats::ci95_halfwidth() const noexcept { return 1.959963984540054 * sem(); }

std::pair<double, double> Proportion::wilson95() const noexcept {
  if (trials == 0) return {0.0, 1.0};
  const double z = 1.959963984540054;
  const double n = static_cast<double>(trials);
  const double p = estimate();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, centre - half), std::min(1.0, centre + half)};
}

double quantile_sorted(const std::vector<double>& sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return quantile_sorted(samples, q);
}

}  // namespace easched::common
