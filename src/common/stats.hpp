#pragma once
// Streaming statistics (Welford) and simple confidence intervals, used by
// the Monte-Carlo fault-injection simulator and the bench harness.

#include <cstddef>
#include <utility>
#include <vector>

namespace easched::common {

/// Numerically stable online mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Merges another accumulator (parallel reduction), Chan's formula.
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  /// Standard error of the mean.
  double sem() const noexcept;
  /// Half-width of an approximate 95% normal confidence interval.
  double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact binomial proportion summary with a Wilson 95% interval —
/// appropriate for small failure probabilities in the fault simulator.
struct Proportion {
  std::size_t successes = 0;
  std::size_t trials = 0;

  double estimate() const noexcept {
    return trials == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(trials);
  }
  /// Wilson score interval [lo, hi] at ~95% confidence.
  std::pair<double, double> wilson95() const noexcept;
};

/// Quantile of a sorted sample (linear interpolation); q in [0,1].
double quantile_sorted(const std::vector<double>& sorted, double q) noexcept;

/// Exact q-quantile of an *unsorted* sample: copies, sorts, and linearly
/// interpolates exactly like quantile_sorted (q clamped to [0,1]; 0 for
/// an empty sample). The convenience every bench's p50/p99 reporting
/// goes through — one interpolation rule repo-wide.
double percentile(std::vector<double> samples, double q);

}  // namespace easched::common
