#pragma once
// Deterministic, splittable random number generation.
//
// easched uses its own xoshiro256** generator (public-domain algorithm by
// Blackman & Vigna) rather than std::mt19937 so that:
//   * streams are cheaply splittable per task/chunk (parallel Monte-Carlo
//     runs are reproducible regardless of thread count), and
//   * results are bit-stable across standard libraries.

#include <array>
#include <cstdint>

namespace easched::common {

/// SplitMix64: used to seed xoshiro and to derive independent substreams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
///
/// Satisfies (most of) the C++ UniformRandomBitGenerator requirements so it
/// can be used with <random> distributions if desired, though easched ships
/// its own inverse-CDF helpers below for bit-stability.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9d8f7e6c5b4a3920ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Exponential variate with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Derives an independent substream (for parallel workers / per-task streams).
  Rng split(std::uint64_t stream_index) const noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace easched::common
