#pragma once
// Centralised numerical tolerances for the easched library.
//
// All floating-point comparisons in solvers, validators and tests go
// through these constants so that accuracy expectations are stated once.

namespace easched::common {

namespace tol {

/// Generic relative tolerance for comparing energies/makespans computed
/// by two independent exact methods (closed form vs. interior point).
inline constexpr double kCrossCheck = 1e-6;

/// Feasibility slack granted by validators on makespan/deadline and
/// reliability constraints (absolute, on quantities of order 1).
inline constexpr double kFeasibility = 1e-7;

/// Simplex pivot tolerance: entries smaller than this are treated as zero.
inline constexpr double kPivot = 1e-9;

/// Simplex optimality tolerance on reduced costs.
inline constexpr double kReducedCost = 1e-9;

/// Barrier method: target duality-gap measure m/t at termination.
inline constexpr double kBarrierGap = 1e-9;

/// Newton step: stop when the Newton decrement^2/2 falls below this.
inline constexpr double kNewtonDecrement = 1e-12;

/// Bisection / golden-section interval width (relative).
inline constexpr double kScalarSearch = 1e-12;

/// Water-filling multiplier bisection tolerance (relative on budget).
inline constexpr double kWaterfill = 1e-12;

}  // namespace tol

/// |a-b| <= atol + rtol*max(|a|,|b|)
inline bool approx_equal(double a, double b, double rtol = tol::kCrossCheck,
                         double atol = 1e-12) {
  const double aa = a < 0 ? -a : a;
  const double bb = b < 0 ? -b : b;
  const double scale = aa > bb ? aa : bb;
  double diff = a - b;
  if (diff < 0) diff = -diff;
  return diff <= atol + rtol * scale;
}

}  // namespace easched::common
