#pragma once
// Lightweight Status / Result<T> types used across the easched library.
//
// Expected failures (infeasible instance, solver did not converge, bad
// input graph) are values, not exceptions: library entry points return
// Status or Result<T>. Exceptions are reserved for programming errors
// (violated preconditions), which throw std::logic_error via EASCHED_CHECK.

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace easched::common {

/// Machine-readable failure category for library operations.
enum class StatusCode {
  kOk = 0,
  kInfeasible,       ///< the instance admits no feasible solution
  kUnbounded,        ///< optimisation problem is unbounded
  kNotConverged,     ///< iterative solver hit its iteration/time limit
  kInvalidArgument,  ///< structurally bad input (cycle, bad mapping, ...)
  kUnsupported,      ///< operation not defined for this input class
  kNotFound,         ///< named entity (solver, file, ...) does not exist
  kInternal,         ///< invariant violation inside the library
  kCancelled,        ///< caller cancelled the operation before it finished
  kDeadlineExceeded, ///< job deadline expired before the work could run
  kOverloaded,       ///< admission control shed the request (queue full / quota)
};

/// Human-readable name of a status code (stable, for logs and tests).
constexpr const char* to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInfeasible: return "INFEASIBLE";
    case StatusCode::kUnbounded: return "UNBOUNDED";
    case StatusCode::kNotConverged: return "NOT_CONVERGED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kOverloaded: return "OVERLOADED";
  }
  return "UNKNOWN";
}

/// Outcome of an operation that produces no value.
class [[nodiscard]] Status {
 public:
  /// Successful status.
  Status() = default;
  /// Failed status with a category and a diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status infeasible(std::string msg) { return {StatusCode::kInfeasible, std::move(msg)}; }
  static Status invalid(std::string msg) { return {StatusCode::kInvalidArgument, std::move(msg)}; }
  static Status unsupported(std::string msg) { return {StatusCode::kUnsupported, std::move(msg)}; }
  static Status not_found(std::string msg) { return {StatusCode::kNotFound, std::move(msg)}; }
  static Status not_converged(std::string msg) { return {StatusCode::kNotConverged, std::move(msg)}; }
  static Status internal(std::string msg) { return {StatusCode::kInternal, std::move(msg)}; }
  static Status cancelled(std::string msg) { return {StatusCode::kCancelled, std::move(msg)}; }
  static Status deadline_exceeded(std::string msg) { return {StatusCode::kDeadlineExceeded, std::move(msg)}; }
  static Status overloaded(std::string msg) { return {StatusCode::kOverloaded, std::move(msg)}; }

  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "CODE: message" (for test output and bench logs).
  std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(common::to_string(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Outcome of an operation that produces a T on success.
///
/// Result is either a value or a non-OK Status; accessing the wrong side
/// throws std::logic_error (a programming error, not an expected failure).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}                // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {         // NOLINT(google-explicit-constructor)
    if (status_.is_ok()) {
      status_ = Status::internal("Result constructed from OK status without value");
    }
  }

  bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  const Status& status() const noexcept { return status_; }

  const T& value() const& {
    require_value();
    return *value_;
  }
  T& value() & {
    require_value();
    return *value_;
  }
  T&& take() && {
    require_value();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  /// Value if present, otherwise the supplied fallback.
  T value_or(T fallback) const& { return value_ ? *value_ : std::move(fallback); }

 private:
  void require_value() const {
    if (!value_) {
      throw std::logic_error("Result::value() on error: " + status_.to_string());
    }
  }
  std::optional<T> value_;
  Status status_ = Status::ok();
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw std::logic_error(std::string("EASCHED_CHECK failed: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (msg.empty() ? "" : (" - " + msg)));
}
}  // namespace detail

}  // namespace easched::common

/// Precondition check: throws std::logic_error when violated.
/// Used for programmer errors only; expected failures use Status.
#define EASCHED_CHECK(expr)                                                          \
  do {                                                                               \
    if (!(expr)) ::easched::common::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define EASCHED_CHECK_MSG(expr, msg)                                                  \
  do {                                                                                \
    if (!(expr)) ::easched::common::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
