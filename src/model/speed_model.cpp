#include "model/speed_model.hpp"

#include <algorithm>
#include <cmath>

namespace easched::model {

SpeedModel SpeedModel::continuous(double fmin, double fmax) {
  EASCHED_CHECK_MSG(fmin > 0.0 && fmin <= fmax, "need 0 < fmin <= fmax");
  return SpeedModel(SpeedModelKind::kContinuous, fmin, fmax, 0.0, {});
}

namespace {
std::vector<double> normalize_levels(std::vector<double> levels) {
  EASCHED_CHECK_MSG(!levels.empty(), "discrete model needs at least one speed");
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end(),
                           [](double a, double b) { return std::fabs(a - b) < 1e-12; }),
               levels.end());
  EASCHED_CHECK_MSG(levels.front() > 0.0, "speeds must be positive");
  return levels;
}
}  // namespace

SpeedModel SpeedModel::discrete(std::vector<double> levels) {
  auto ls = normalize_levels(std::move(levels));
  const double lo = ls.front(), hi = ls.back();
  return SpeedModel(SpeedModelKind::kDiscrete, lo, hi, 0.0, std::move(ls));
}

SpeedModel SpeedModel::vdd_hopping(std::vector<double> levels) {
  auto ls = normalize_levels(std::move(levels));
  const double lo = ls.front(), hi = ls.back();
  return SpeedModel(SpeedModelKind::kVddHopping, lo, hi, 0.0, std::move(ls));
}

SpeedModel SpeedModel::incremental(double fmin, double fmax, double delta) {
  EASCHED_CHECK_MSG(fmin > 0.0 && fmin <= fmax, "need 0 < fmin <= fmax");
  EASCHED_CHECK_MSG(delta > 0.0, "need delta > 0");
  std::vector<double> levels;
  for (double f = fmin; f < fmax - 1e-12; f += delta) levels.push_back(f);
  levels.push_back(fmax);
  return SpeedModel(SpeedModelKind::kIncremental, fmin, fmax, delta, std::move(levels));
}

bool SpeedModel::admissible(double f, double tolerance) const {
  if (kind_ == SpeedModelKind::kContinuous) {
    return f >= fmin_ - tolerance && f <= fmax_ + tolerance;
  }
  for (double level : levels_) {
    if (std::fabs(level - f) <= tolerance) return true;
  }
  return false;
}

common::Result<double> SpeedModel::round_up(double f) const {
  if (f > fmax_ * (1.0 + 1e-12)) {
    return common::Status::infeasible("requested speed above fmax");
  }
  if (kind_ == SpeedModelKind::kContinuous) return std::max(f, fmin_);
  for (double level : levels_) {
    if (level >= f - 1e-12) return level;
  }
  return fmax_;  // unreachable given the guard above
}

common::Result<double> SpeedModel::round_down(double f) const {
  if (f < fmin_ * (1.0 - 1e-12)) {
    return common::Status::infeasible("requested speed below fmin");
  }
  if (kind_ == SpeedModelKind::kContinuous) return std::min(f, fmax_);
  for (auto it = levels_.rbegin(); it != levels_.rend(); ++it) {
    if (*it <= f + 1e-12) return *it;
  }
  return fmin_;  // unreachable given the guard above
}

std::pair<double, double> SpeedModel::bracket(double f) const {
  const double fc = std::clamp(f, fmin_, fmax_);
  if (kind_ == SpeedModelKind::kContinuous) return {fc, fc};
  double lo = levels_.front();
  for (double level : levels_) {
    if (level <= fc + 1e-12) {
      lo = level;
    } else {
      return {lo, level};
    }
  }
  return {levels_.back(), levels_.back()};
}

std::vector<double> xscale_levels() {
  // Normalised Intel XScale (PXA) frequency ladder (GHz-scale units).
  return {0.15, 0.4, 0.6, 0.8, 1.0};
}

}  // namespace easched::model
