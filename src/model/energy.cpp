#include "model/energy.hpp"

#include <cmath>

#include "common/status.hpp"

namespace easched::model {

double execution_energy(double weight, double speed) {
  EASCHED_CHECK_MSG(speed > 0.0 || weight == 0.0, "speed must be positive for nonzero work");
  return weight == 0.0 ? 0.0 : weight * speed * speed;
}

double power_time_energy(double speed, double time) { return speed * speed * speed * time; }

double vdd_energy(const std::vector<SpeedInterval>& profile) {
  double e = 0.0;
  for (const auto& p : profile) e += p.speed * p.speed * p.speed * p.time;
  return e;
}

double vdd_work(const std::vector<SpeedInterval>& profile) {
  double w = 0.0;
  for (const auto& p : profile) w += p.speed * p.time;
  return w;
}

double vdd_time(const std::vector<SpeedInterval>& profile) {
  double t = 0.0;
  for (const auto& p : profile) t += p.time;
  return t;
}

std::pair<double, double> two_speed_mix(double w, double t, double lo, double hi) {
  EASCHED_CHECK_MSG(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
  if (std::fabs(hi - lo) < 1e-15) {
    // Degenerate: single speed; only consistent if w == lo*t (caller's duty).
    return {t, 0.0};
  }
  // Solve: a + b = t, lo*a + hi*b = w  =>  b = (w - lo*t)/(hi - lo).
  double b = (w - lo * t) / (hi - lo);
  double a = t - b;
  // Numerical clamping for boundary cases (w == lo*t or w == hi*t).
  if (a < 0.0 && a > -1e-9 * t) a = 0.0;
  if (b < 0.0 && b > -1e-9 * t) b = 0.0;
  EASCHED_CHECK_MSG(a >= 0.0 && b >= 0.0, "two_speed_mix: t outside [w/hi, w/lo]");
  return {a, b};
}

}  // namespace easched::model
