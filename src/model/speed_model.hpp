#pragma once
// Speed (DVFS) models of the paper, section II:
//
//  * CONTINUOUS:  any speed in [fmin, fmax].
//  * DISCRETE:    speeds in a finite set {f1..fm}; one speed per task.
//  * VDD-HOPPING: speeds in a finite set, but a task may be executed as a
//                 mix of several speeds (speed changes during execution).
//  * INCREMENTAL: speeds fmin + i*delta, i = 0..(fmax-fmin)/delta — the
//                 "potentiometer knob" regular counterpart of DISCRETE.
//
// One class covers all four kinds; discrete kinds expose their level set,
// the continuous kind its interval. VDD mixing semantics live with the
// solvers (bicrit/vdd_lp, tricrit/vdd_adapt), not here: VDD shares the
// DISCRETE level set and only changes what a schedule may do with it.

#include <utility>
#include <vector>

#include "common/status.hpp"

namespace easched::model {

enum class SpeedModelKind { kContinuous, kDiscrete, kVddHopping, kIncremental };

constexpr const char* to_string(SpeedModelKind k) noexcept {
  switch (k) {
    case SpeedModelKind::kContinuous: return "CONTINUOUS";
    case SpeedModelKind::kDiscrete: return "DISCRETE";
    case SpeedModelKind::kVddHopping: return "VDD-HOPPING";
    case SpeedModelKind::kIncremental: return "INCREMENTAL";
  }
  return "UNKNOWN";
}

class SpeedModel {
 public:
  /// Continuous speeds in [fmin, fmax], 0 < fmin <= fmax.
  static SpeedModel continuous(double fmin, double fmax);
  /// Discrete speed set (positive, deduplicated, sorted internally).
  static SpeedModel discrete(std::vector<double> levels);
  /// VDD-hopping over a discrete speed set.
  static SpeedModel vdd_hopping(std::vector<double> levels);
  /// Incremental: fmin + i*delta up to fmax (fmax always admissible; the
  /// last step is shortened when (fmax-fmin) is not a multiple of delta,
  /// which matches "admissible speeds lie in [fmin,fmax]").
  static SpeedModel incremental(double fmin, double fmax, double delta);

  SpeedModelKind kind() const noexcept { return kind_; }
  bool is_discrete_kind() const noexcept { return kind_ != SpeedModelKind::kContinuous; }

  double fmin() const noexcept { return fmin_; }
  double fmax() const noexcept { return fmax_; }
  /// Step of the INCREMENTAL model (0 for the others).
  double delta() const noexcept { return delta_; }

  /// Levels of a discrete-kind model (empty for CONTINUOUS).
  const std::vector<double>& levels() const noexcept { return levels_; }
  int num_levels() const noexcept { return static_cast<int>(levels_.size()); }

  /// May a *single execution* run entirely at speed f?
  bool admissible(double f, double tolerance = 1e-9) const;

  /// Smallest admissible speed >= f; kInfeasible when f > fmax.
  common::Result<double> round_up(double f) const;
  /// Largest admissible speed <= f; kInfeasible when f < fmin.
  common::Result<double> round_down(double f) const;

  /// For discrete kinds: the pair of consecutive levels (lo, hi) with
  /// lo <= f <= hi (lo == hi when f is a level). Clamps f into [fmin,fmax].
  std::pair<double, double> bracket(double f) const;

 private:
  SpeedModel(SpeedModelKind kind, double fmin, double fmax, double delta,
             std::vector<double> levels)
      : kind_(kind), fmin_(fmin), fmax_(fmax), delta_(delta), levels_(std::move(levels)) {}

  SpeedModelKind kind_;
  double fmin_;
  double fmax_;
  double delta_ = 0.0;
  std::vector<double> levels_;
};

/// The Intel XScale-like level set used throughout the benches (the paper
/// cites Intel XScale as the canonical DISCRETE example).
std::vector<double> xscale_levels();

}  // namespace easched::model
