#pragma once
// Reliability model of the paper (section II, equation (1)):
//
//   R_i(f) = 1 - lambda0 * exp(d * (fmax - f)/(fmax - fmin)) * w_i / f
//
// i.e. the per-task failure probability at speed f is
//   lambda_i(f) = rate(f) * (w_i / f),   rate(f) = lambda0 * e^{d (fmax-f)/(fmax-fmin)}
// where rate(f) is a *per-time* transient fault rate: DVFS scaling lowers
// the speed and simultaneously raises the fault rate (Zhu et al., the
// paper's motivation — claim C11).
//
// Constraints:
//  * single execution at f:     lambda_i(f)            <= lambda_i(frel)
//    (equivalently f >= frel, since lambda_i is strictly decreasing in f)
//  * re-execution at f1, f2:    lambda_i(f1)*lambda_i(f2) <= lambda_i(frel)
//  * VDD-hopping execution:     failure accumulates linearly over time,
//    lambda_mix = sum_s rate(f_s) * alpha_s  (single-speed case reduces to
//    rate(f) * w/f, consistent with (1)).

#include <vector>

#include "common/status.hpp"
#include "model/energy.hpp"

namespace easched::model {

class ReliabilityModel {
 public:
  /// lambda0: fault probability mass at fmax per unit time;
  /// d >= 0: DVFS sensitivity; frel in [fmin, fmax]: threshold speed.
  ReliabilityModel(double lambda0, double d, double fmin, double fmax, double frel);

  double lambda0() const noexcept { return lambda0_; }
  double sensitivity() const noexcept { return d_; }
  double fmin() const noexcept { return fmin_; }
  double fmax() const noexcept { return fmax_; }
  double frel() const noexcept { return frel_; }

  /// Per-time fault rate at speed f: lambda0 * exp(d (fmax-f)/(fmax-fmin)).
  double rate(double f) const;

  /// Failure probability of one execution of weight w at speed f (may
  /// exceed 1 for extreme parameters; the algebraic model of the paper).
  double failure_prob(double weight, double f) const;

  /// R_i(f) = 1 - failure_prob.
  double reliability(double weight, double f) const;

  /// The per-task threshold lambda_i(frel).
  double threshold_failure(double weight) const;

  /// Does a single execution at f meet the constraint R_i(f) >= R_i(frel)?
  bool single_ok(double weight, double f, double tolerance = 1e-9) const;

  /// Does re-execution at (f1, f2) meet 1-(1-R(f1))(1-R(f2)) >= R(frel)?
  bool pair_ok(double weight, double f1, double f2, double tolerance = 1e-9) const;

  /// Failure probability of a VDD-hopping execution profile (must process
  /// weight w; not checked here): sum_s rate(f_s)*alpha_s.
  double mixed_failure(const std::vector<SpeedInterval>& profile) const;

  /// Minimal equal speed for k independent attempts (re-executions or
  /// replicas): the smallest g in [fmin, fmax] with
  /// lambda_i(g)^k <= lambda_i(frel). Monotone decreasing in k.
  /// Returns fmin when even fmin satisfies it; kInfeasible when g > fmax
  /// would be required (cannot happen for frel <= fmax and lambda(frel)<=1).
  common::Result<double> f_multi(double weight, int attempts) const;

  /// Minimal equal re-execution speed: f_multi(weight, 2). Both executions
  /// of a re-executed task may run this slowly and still satisfy the
  /// constraint (the companion paper shows equal speeds are optimal; tests
  /// verify numerically).
  common::Result<double> f_inf(double weight) const { return f_multi(weight, 2); }

 private:
  double lambda0_;
  double d_;
  double fmin_;
  double fmax_;
  double frel_;
};

/// Default model parameters used by benches and examples: lambda0 = 1e-5,
/// d = 3, matching the magnitude used in the companion papers' evaluations.
ReliabilityModel default_reliability(double fmin, double fmax, double frel);

}  // namespace easched::model
