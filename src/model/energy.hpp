#pragma once
// Energy model of the paper (section II, "Energy"):
//
//   "When a processor operates at speed f during t time-units, the
//    consumed energy is f^3 * t" (dynamic part only; static energy is not
//    accounted because all processors stay up for the whole execution).
//
// For a task of weight w at constant speed f:  t = w/f  =>  E = w * f^2.
// For a re-executed task both executions are ALWAYS charged (worst-case
// provisioning):  E = w * (f1^2 + f2^2).
// For a VDD-hopping execution that spends alpha_s time units at level f_s:
//   E = sum_s f_s^3 * alpha_s  (linear in alpha — this is what makes the
//   VDD BI-CRIT problem an LP, claim C7).

#include <utility>
#include <vector>

namespace easched::model {

/// Energy of one constant-speed execution: w * f^2.
double execution_energy(double weight, double speed);

/// Energy of executing at speed f for t time units: f^3 * t.
double power_time_energy(double speed, double time);

/// One piece of a VDD-hopping execution profile.
struct SpeedInterval {
  double speed = 0.0;  ///< f_s
  double time = 0.0;   ///< alpha_s (time spent at f_s)
};

/// Energy of a VDD-hopping execution: sum f_s^3 * alpha_s.
double vdd_energy(const std::vector<SpeedInterval>& profile);

/// Work processed by a VDD profile: sum f_s * alpha_s.
double vdd_work(const std::vector<SpeedInterval>& profile);

/// Duration of a VDD profile: sum alpha_s.
double vdd_time(const std::vector<SpeedInterval>& profile);

/// The optimal two-speed mix executing work w in exactly time t using
/// consecutive levels lo < hi (time/work matching):
///   alpha_lo + alpha_hi = t,  lo*alpha_lo + hi*alpha_hi = w.
/// Requires w/hi <= t <= w/lo. Returns {alpha_lo, alpha_hi}.
std::pair<double, double> two_speed_mix(double w, double t, double lo, double hi);

}  // namespace easched::model
