#include "model/ladder.hpp"

#include <algorithm>
#include <utility>

namespace easched::model {

common::Result<DvfsLadder> DvfsLadder::create(std::vector<double> frequencies,
                                              std::vector<double> voltages) {
  if (frequencies.empty()) {
    return common::Status::invalid("ladder needs at least one operating point");
  }
  if (frequencies.size() != voltages.size()) {
    return common::Status::invalid("ladder frequency/voltage tables differ in size");
  }
  std::vector<std::pair<double, double>> points;
  points.reserve(frequencies.size());
  for (std::size_t i = 0; i < frequencies.size(); ++i) {
    if (frequencies[i] <= 0.0 || voltages[i] <= 0.0) {
      return common::Status::invalid("ladder operating points must be positive");
    }
    points.emplace_back(frequencies[i], voltages[i]);
  }
  std::sort(points.begin(), points.end());
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].first == points[i - 1].first) {
      return common::Status::invalid("ladder has duplicate frequency levels");
    }
    if (points[i].second < points[i - 1].second) {
      return common::Status::invalid("ladder voltage must not decrease with frequency");
    }
  }
  std::vector<double> f(points.size()), v(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    f[i] = points[i].first;
    v[i] = points[i].second;
  }
  return DvfsLadder(std::move(f), std::move(v));
}

const DvfsLadder& DvfsLadder::xscale7() {
  static const DvfsLadder ladder = [] {
    auto r = create({1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4},
                    {5.0, 4.7, 4.4, 4.1, 3.8, 3.5, 3.2});
    EASCHED_CHECK(r.is_ok());
    return std::move(r).take();
  }();
  return ladder;
}

double DvfsLadder::switching_power(int level) const {
  const double v = voltage(level);
  return frequency(level) * v * v;
}

common::Result<int> DvfsLadder::level_at_or_above(double f) const {
  const auto it = std::lower_bound(frequencies_.begin(), frequencies_.end(), f);
  if (it == frequencies_.end()) {
    return common::Status::infeasible("no ladder level at or above requested frequency");
  }
  return static_cast<int>(it - frequencies_.begin());
}

SpeedModel DvfsLadder::speed_model(bool vdd_hopping) const {
  return vdd_hopping ? SpeedModel::vdd_hopping(frequencies_)
                     : SpeedModel::discrete(frequencies_);
}

}  // namespace easched::model
