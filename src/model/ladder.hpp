#pragma once
// Discrete frequency/voltage ladders — the DVFS hardware model of the
// related RT-DVS simulators (paired FREQ_LEVELS / VOLTAGE_LEVELS tables,
// Pillai & Shin style), bridged onto the paper's speed models.
//
// A DvfsLadder is a validated, frequency-sorted table of (frequency,
// voltage) operating points. The paper's solvers only see the frequency
// column — speed_model() produces the DISCRETE or VDD-HOPPING
// model::SpeedModel over the ladder's levels, so the whole existing VDD
// machinery (vdd-lp, discrete-bnb, bracket/round_up) applies unchanged.
// The voltage column is kept for reporting and validation: the related
// simulators charge f * V^2 * t per level, and switching_power() exposes
// that figure so simulator output can be cross-read against them. The
// simulator's *energy accounting* stays on the paper's cube law
// (model::power_time_energy), which is what the offline oracle minimizes
// — mixing the two laws would make competitive ratios meaningless.

#include <vector>

#include "common/status.hpp"
#include "model/speed_model.hpp"

namespace easched::model {

class DvfsLadder {
 public:
  /// Paired operating points; the two vectors must have equal, non-zero
  /// size and strictly positive entries. Points are sorted by frequency
  /// internally; duplicate frequencies and voltages that decrease as the
  /// frequency rises are rejected (a real ladder raises VDD with f).
  static common::Result<DvfsLadder> create(std::vector<double> frequencies,
                                           std::vector<double> voltages);

  /// The 7-level ladder of the related RT-DVS simulator (frequencies
  /// 0.4..1.0 in steps of 0.1, voltages 3.2..5.0), sorted ascending.
  static const DvfsLadder& xscale7();

  int num_levels() const noexcept { return static_cast<int>(frequencies_.size()); }
  double frequency(int level) const { return frequencies_.at(static_cast<std::size_t>(level)); }
  double voltage(int level) const { return voltages_.at(static_cast<std::size_t>(level)); }
  double fmin() const noexcept { return frequencies_.front(); }
  double fmax() const noexcept { return frequencies_.back(); }
  const std::vector<double>& frequencies() const noexcept { return frequencies_; }

  /// The related simulators' power figure at a level: f * V^2.
  double switching_power(int level) const;

  /// Lowest level whose frequency is >= f; kInfeasible above fmax.
  common::Result<int> level_at_or_above(double f) const;

  /// The paper-side view: DISCRETE (one speed per execution) or
  /// VDD-HOPPING (speed mixes allowed) over the frequency column.
  SpeedModel speed_model(bool vdd_hopping = false) const;

 private:
  DvfsLadder(std::vector<double> f, std::vector<double> v)
      : frequencies_(std::move(f)), voltages_(std::move(v)) {}

  std::vector<double> frequencies_;  ///< ascending
  std::vector<double> voltages_;     ///< non-decreasing, paired with frequencies_
};

}  // namespace easched::model
