#include "model/reliability.hpp"

#include <cmath>

#include "opt/scalar.hpp"

namespace easched::model {

ReliabilityModel::ReliabilityModel(double lambda0, double d, double fmin, double fmax,
                                   double frel)
    : lambda0_(lambda0), d_(d), fmin_(fmin), fmax_(fmax), frel_(frel) {
  EASCHED_CHECK_MSG(lambda0 > 0.0, "lambda0 must be positive");
  EASCHED_CHECK_MSG(d >= 0.0, "sensitivity d must be >= 0");
  EASCHED_CHECK_MSG(fmin > 0.0 && fmin < fmax, "need 0 < fmin < fmax");
  EASCHED_CHECK_MSG(frel >= fmin && frel <= fmax, "frel must lie in [fmin, fmax]");
}

double ReliabilityModel::rate(double f) const {
  return lambda0_ * std::exp(d_ * (fmax_ - f) / (fmax_ - fmin_));
}

double ReliabilityModel::failure_prob(double weight, double f) const {
  if (weight == 0.0) return 0.0;
  EASCHED_CHECK_MSG(f > 0.0, "speed must be positive");
  return rate(f) * weight / f;
}

double ReliabilityModel::reliability(double weight, double f) const {
  return 1.0 - failure_prob(weight, f);
}

double ReliabilityModel::threshold_failure(double weight) const {
  return failure_prob(weight, frel_);
}

bool ReliabilityModel::single_ok(double weight, double f, double tolerance) const {
  if (weight == 0.0) return true;
  return failure_prob(weight, f) <= threshold_failure(weight) * (1.0 + tolerance) + 1e-300;
}

bool ReliabilityModel::pair_ok(double weight, double f1, double f2, double tolerance) const {
  if (weight == 0.0) return true;
  const double product = failure_prob(weight, f1) * failure_prob(weight, f2);
  return product <= threshold_failure(weight) * (1.0 + tolerance) + 1e-300;
}

double ReliabilityModel::mixed_failure(const std::vector<SpeedInterval>& profile) const {
  double lam = 0.0;
  for (const auto& p : profile) lam += rate(p.speed) * p.time;
  return lam;
}

common::Result<double> ReliabilityModel::f_multi(double weight, int attempts) const {
  EASCHED_CHECK_MSG(attempts >= 1, "need at least one attempt");
  if (weight == 0.0) return fmin_;
  if (attempts == 1) return std::max(frel_, fmin_);
  const double target =
      std::pow(threshold_failure(weight), 1.0 / static_cast<double>(attempts));
  // lambda is strictly decreasing in f; find smallest g with lambda(g) <= target.
  if (failure_prob(weight, fmin_) <= target) return fmin_;
  if (failure_prob(weight, fmax_) > target) {
    return common::Status::infeasible(
        "even fmax cannot reach the redundancy reliability threshold");
  }
  auto root = opt::bisect([&](double g) { return failure_prob(weight, g) - target; }, fmin_,
                          fmax_);
  if (!root.is_ok()) return root.status();
  return root.value();
}

ReliabilityModel default_reliability(double fmin, double fmax, double frel) {
  return ReliabilityModel(1e-5, 3.0, fmin, fmax, frel);
}

}  // namespace easched::model
