#pragma once
// Record payload schemas of the persistent solve-store.
//
// Two record kinds mirror the split the in-memory SolveCache keys on
// (api/digest.hpp): a *blob* record persists one interned instance — its
// 128-bit digest plus the exact canonical bytes — under a log-unique blob
// id, and an *entry* record persists one solved point: the blob id it
// belongs to (an exact reference, immune to digest collisions), the
// requested solver name, the per-point scalars (the same fields as
// frontier::CacheKey, as process-independent bit patterns) and the full
// solve outcome — a SolveReport with its schedule, or the non-OK Status a
// failed solve memoized. Doubles are stored as IEEE-754 bit patterns, so a
// reloaded schedule is bit-identical to the one that was solved.
//
// Encoding discipline matches api/digest.cpp: little-endian fixed-width
// fields, length-prefixed strings, no padding — the payload of a given
// record is byte-stable across processes and platforms.

#include <cstdint>
#include <memory>
#include <string>

#include "api/digest.hpp"
#include "api/solver.hpp"
#include "common/status.hpp"

namespace easched::store {

/// Process-independent per-point identity: the point part of a
/// frontier::CacheKey with the interned ids replaced by the blob id and
/// solver name carried alongside. Field-for-field, this is what
/// SolveCache::key_for folds into its POD key.
struct PointKey {
  std::uint8_t kind = 0;  ///< api::ProblemKind as stored
  std::uint64_t deadline_bits = 0;
  std::uint64_t frel_bits = 0;
  std::int64_t approx_K = 0;
  std::uint64_t gap_tolerance_bits = 0;
  std::int64_t max_nodes = 0;
  std::int64_t dp_buckets = 0;
  std::int64_t fork_grid = 0;
  std::int64_t polish = 0;

  friend bool operator==(const PointKey& a, const PointKey& b) noexcept {
    return a.kind == b.kind && a.deadline_bits == b.deadline_bits &&
           a.frel_bits == b.frel_bits && a.approx_K == b.approx_K &&
           a.gap_tolerance_bits == b.gap_tolerance_bits && a.max_nodes == b.max_nodes &&
           a.dp_buckets == b.dp_buckets && a.fork_grid == b.fork_grid &&
           a.polish == b.polish;
  }
};

/// One interner record: the instance a set of entries belongs to.
struct BlobRecord {
  std::uint64_t id = 0;  ///< log-unique, assigned by the writing store
  api::InstanceDigest digest;
  std::string bytes;  ///< api::instance_bytes, exact
};

/// One cache-entry record. `result` is shared because the store, the
/// in-memory cache and every caller hand out the same immutable pointee.
struct EntryRecord {
  std::uint64_t blob_id = 0;
  std::string solver;  ///< requested solver name ("" = auto-selected)
  PointKey point;
  std::shared_ptr<const common::Result<api::SolveReport>> result;
};

std::string encode_blob(const BlobRecord& blob);
common::Result<BlobRecord> decode_blob(const std::string& payload);

std::string encode_entry(const EntryRecord& entry);
common::Result<EntryRecord> decode_entry(const std::string& payload);

/// Approximate resident footprint of a stored result, used by the cache's
/// byte-sized LRU accounting (schedules dominate: they scale with task
/// count and VDD profile length, everything else is near-constant).
std::size_t result_footprint_bytes(const common::Result<api::SolveReport>& result);

}  // namespace easched::store
