#include "store/serialize.hpp"

#include <cstring>

#include "core/problem.hpp"
#include "sched/schedule.hpp"

namespace easched::store {
namespace {

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out += s;
}

/// Bounds-checked sequential decoder: any overrun flips `ok` and every
/// later read returns zero values, so decoders check once at the end.
struct Cursor {
  const std::string& buf;
  std::size_t at = 0;
  bool ok = true;

  bool has(std::size_t n) {
    if (!ok || buf.size() - at < n) ok = false;
    return ok;
  }
  std::uint8_t get_u8() {
    if (!has(1)) return 0;
    return static_cast<std::uint8_t>(buf[at++]);
  }
  std::uint64_t get_u64() {
    if (!has(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[at + i])) << (8 * i);
    }
    at += 8;
    return v;
  }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_double() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string get_string() {
    const std::uint64_t n = get_u64();
    if (!has(static_cast<std::size_t>(n))) return {};
    std::string s(buf, at, static_cast<std::size_t>(n));
    at += static_cast<std::size_t>(n);
    return s;
  }
  bool done() const { return ok && at == buf.size(); }
};

// Counts kept sane even on corrupt input: a flipped length field must not
// turn into a multi-gigabyte allocation before the bounds check trips.
constexpr std::int64_t kMaxTasks = 1 << 24;
constexpr std::int64_t kMaxExecutions = 2;
constexpr std::int64_t kMaxProfile = 1 << 20;

void put_schedule(std::string& out, const sched::Schedule& schedule) {
  put_i64(out, schedule.num_tasks());
  for (int t = 0; t < schedule.num_tasks(); ++t) {
    const auto& decision = schedule.at(t);
    put_i64(out, static_cast<std::int64_t>(decision.executions.size()));
    for (const auto& exec : decision.executions) {
      put_double(out, exec.speed);
      put_i64(out, static_cast<std::int64_t>(exec.profile.size()));
      for (const auto& interval : exec.profile) {
        put_double(out, interval.speed);
        put_double(out, interval.time);
      }
    }
  }
}

bool get_schedule(Cursor& c, sched::Schedule& out) {
  const std::int64_t tasks = c.get_i64();
  if (!c.ok || tasks < 0 || tasks > kMaxTasks) return false;
  out = sched::Schedule(static_cast<int>(tasks));
  for (std::int64_t t = 0; t < tasks; ++t) {
    const std::int64_t execs = c.get_i64();
    if (!c.ok || execs < 0 || execs > kMaxExecutions) return false;
    auto& decision = out.at(static_cast<int>(t));
    decision.executions.resize(static_cast<std::size_t>(execs));
    for (auto& exec : decision.executions) {
      exec.speed = c.get_double();
      const std::int64_t profile = c.get_i64();
      if (!c.ok || profile < 0 || profile > kMaxProfile) return false;
      exec.profile.resize(static_cast<std::size_t>(profile));
      for (auto& interval : exec.profile) {
        interval.speed = c.get_double();
        interval.time = c.get_double();
      }
    }
  }
  return c.ok;
}

void put_result(std::string& out, const common::Result<api::SolveReport>& result) {
  put_u8(out, result.is_ok() ? 1 : 0);
  if (!result.is_ok()) {
    put_u8(out, static_cast<std::uint8_t>(result.status().code()));
    put_string(out, result.status().message());
    return;
  }
  const api::SolveReport& report = result.value();
  put_double(out, report.energy);
  put_double(out, report.makespan);
  put_string(out, report.solver);
  put_u8(out, static_cast<std::uint8_t>(report.problem));
  put_double(out, report.wall_ms);
  put_i64(out, report.iterations);
  put_i64(out, report.re_executed);
  put_u8(out, report.exact ? 1 : 0);
  put_double(out, report.gap_bound);
  put_schedule(out, report.schedule);
}

common::Result<common::Result<api::SolveReport>> get_result(Cursor& c) {
  const auto bad = [] {
    return common::Status::invalid("corrupt entry record payload");
  };
  const std::uint8_t is_ok = c.get_u8();
  if (!c.ok) return bad();
  if (is_ok == 0) {
    const auto code = static_cast<common::StatusCode>(c.get_u8());
    std::string message = c.get_string();
    if (!c.ok || code == common::StatusCode::kOk) return bad();
    return common::Result<api::SolveReport>(common::Status(code, std::move(message)));
  }
  api::SolveReport report;
  report.energy = c.get_double();
  report.makespan = c.get_double();
  report.solver = c.get_string();
  report.problem = c.get_u8() == 0 ? api::ProblemKind::kBiCrit : api::ProblemKind::kTriCrit;
  report.wall_ms = c.get_double();
  report.iterations = c.get_i64();
  report.re_executed = static_cast<int>(c.get_i64());
  report.exact = c.get_u8() != 0;
  report.gap_bound = c.get_double();
  if (!get_schedule(c, report.schedule)) return bad();
  return common::Result<api::SolveReport>(std::move(report));
}

}  // namespace

std::string encode_blob(const BlobRecord& blob) {
  std::string out;
  out.reserve(32 + blob.bytes.size());
  put_u64(out, blob.id);
  put_u64(out, blob.digest.hi);
  put_u64(out, blob.digest.lo);
  put_string(out, blob.bytes);
  return out;
}

common::Result<BlobRecord> decode_blob(const std::string& payload) {
  Cursor c{payload};
  BlobRecord blob;
  blob.id = c.get_u64();
  blob.digest.hi = c.get_u64();
  blob.digest.lo = c.get_u64();
  blob.bytes = c.get_string();
  if (!c.done() || blob.id == 0) {
    return common::Status::invalid("corrupt blob record payload");
  }
  return blob;
}

std::string encode_entry(const EntryRecord& entry) {
  std::string out;
  out.reserve(128);
  put_u64(out, entry.blob_id);
  put_string(out, entry.solver);
  put_u8(out, entry.point.kind);
  put_u64(out, entry.point.deadline_bits);
  put_u64(out, entry.point.frel_bits);
  put_i64(out, entry.point.approx_K);
  put_u64(out, entry.point.gap_tolerance_bits);
  put_i64(out, entry.point.max_nodes);
  put_i64(out, entry.point.dp_buckets);
  put_i64(out, entry.point.fork_grid);
  put_i64(out, entry.point.polish);
  put_result(out, *entry.result);
  return out;
}

common::Result<EntryRecord> decode_entry(const std::string& payload) {
  Cursor c{payload};
  EntryRecord entry;
  entry.blob_id = c.get_u64();
  entry.solver = c.get_string();
  entry.point.kind = c.get_u8();
  entry.point.deadline_bits = c.get_u64();
  entry.point.frel_bits = c.get_u64();
  entry.point.approx_K = c.get_i64();
  entry.point.gap_tolerance_bits = c.get_u64();
  entry.point.max_nodes = c.get_i64();
  entry.point.dp_buckets = c.get_i64();
  entry.point.fork_grid = c.get_i64();
  entry.point.polish = c.get_i64();
  auto result = get_result(c);
  if (!result.is_ok()) return result.status();
  if (!c.done() || entry.blob_id == 0) {
    return common::Status::invalid("corrupt entry record payload");
  }
  entry.result = std::make_shared<const common::Result<api::SolveReport>>(
      std::move(result).take());
  return entry;
}

std::size_t result_footprint_bytes(const common::Result<api::SolveReport>& result) {
  std::size_t bytes = sizeof(common::Result<api::SolveReport>);
  if (!result.is_ok()) return bytes + result.status().message().size();
  const api::SolveReport& report = result.value();
  bytes += report.solver.size();
  for (int t = 0; t < report.schedule.num_tasks(); ++t) {
    const auto& decision = report.schedule.at(t);
    bytes += sizeof(sched::TaskDecision);
    for (const auto& exec : decision.executions) {
      bytes += sizeof(sched::Execution) + exec.profile.size() * sizeof(model::SpeedInterval);
    }
  }
  return bytes;
}

}  // namespace easched::store
