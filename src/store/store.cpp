#include "store/store.hpp"

#include <cstdio>
#include <cstring>
#include <utility>

namespace easched::store {
namespace {

std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v) { return api::mix64(h ^ v); }

double bits_to_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

std::size_t SolveStore::EntryKeyHash::operator()(const EntryKey& k) const noexcept {
  std::uint64_t h = 0x51afd6ed558ccd6dULL;
  h = mix_hash(h, k.blob_id);
  h = mix_hash(h, std::hash<std::string>{}(k.solver));
  h = mix_hash(h, k.point.kind);
  h = mix_hash(h, k.point.deadline_bits);
  h = mix_hash(h, k.point.frel_bits);
  h = mix_hash(h, static_cast<std::uint64_t>(k.point.approx_K));
  h = mix_hash(h, k.point.gap_tolerance_bits);
  h = mix_hash(h, static_cast<std::uint64_t>(k.point.max_nodes));
  h = mix_hash(h, static_cast<std::uint64_t>(k.point.dp_buckets));
  h = mix_hash(h, static_cast<std::uint64_t>(k.point.fork_grid));
  h = mix_hash(h, static_cast<std::uint64_t>(k.point.polish));
  return static_cast<std::size_t>(h);
}

common::Result<SolveStore> SolveStore::open(StoreOptions options) {
  common::Result<RecordLog> log = RecordLog::open(options.path, options.read_only);
  if (!log.is_ok()) return log.status();
  SolveStore st(std::move(options), std::move(log).take());
  // Load every intact record. Decode failures are tolerated record by
  // record (a record that passed its CRC but does not decode was written
  // by a future format and is skipped); torn tails were already handled
  // by the log layer. The handle is not published yet, but the load
  // takes the lock anyway: consume_record requires it, and an
  // uncontended acquire costs nothing.
  common::Result<PollReport> polled = [&st] {
    common::MutexLock lock(*st.mutex_);
    return st.log_.poll([&st](RecordType type, const std::string& payload)
                            EASCHED_NO_THREAD_SAFETY_ANALYSIS {
                              st.consume_record(type, payload);
                            });
  }();
  if (!polled.is_ok()) return polled.status();
  return st;
}

void SolveStore::consume_record(RecordType type, const std::string& payload) {
  if (type == RecordType::kBlob) {
    common::Result<BlobRecord> blob = decode_blob(payload);
    if (blob.is_ok()) apply_blob(std::move(blob).take());
  } else {
    common::Result<EntryRecord> entry = decode_entry(payload);
    if (entry.is_ok()) apply_entry(std::move(entry).take());
  }
}

void SolveStore::apply_blob(BlobRecord blob) {
  if (blob.id >= next_blob_id_) next_blob_id_ = blob.id + 1;
  auto [it, inserted] = blobs_.emplace(
      blob.id,
      Blob{blob.digest, std::make_shared<const std::string>(std::move(blob.bytes))});
  if (inserted) blob_ids_[blob.digest.lo].push_back(blob.id);
}

void SolveStore::apply_entry(EntryRecord entry) {
  if (blobs_.find(entry.blob_id) == blobs_.end()) return;  // orphan: skip
  EntryKey key{entry.blob_id, std::move(entry.solver), entry.point};
  auto [it, inserted] = entries_.emplace(key, entry.result);
  if (!inserted) {
    ++superseded_;  // later record wins: the log is a last-write-wins map
    it->second = entry.result;
  }
  if (entry.result->is_ok() &&
      entry.point.kind == static_cast<std::uint8_t>(api::ProblemKind::kBiCrit)) {
    schedules_[entry.blob_id][bits_to_double(entry.point.deadline_bits)] = entry.result;
  }
}

std::uint64_t SolveStore::find_blob_id(const api::InstanceDigest& digest,
                                       const std::string& bytes) const {
  auto bucket = blob_ids_.find(digest.lo);
  if (bucket == blob_ids_.end()) return 0;
  for (std::uint64_t id : bucket->second) {
    auto blob = blobs_.find(id);
    // Digest narrows, exact bytes decide — collisions can never alias.
    if (blob != blobs_.end() && blob->second.digest == digest &&
        *blob->second.bytes == bytes) {
      return id;
    }
  }
  return 0;
}

common::Status SolveStore::put(const api::InstanceDigest& digest,
                               const std::string& instance_bytes,
                               const std::string& solver, const PointKey& point,
                               const StoredResult& result) {
  if (options_.read_only) {
    return common::Status::unsupported("solve-store '" + options_.path +
                                       "' is open read-only");
  }
  common::MutexLock lock(*mutex_);
  std::uint64_t blob_id = find_blob_id(digest, instance_bytes);
  if (blob_id == 0) {
    blob_id = next_blob_id_;
    BlobRecord blob{blob_id, digest, instance_bytes};
    common::Status appended = log_.append(RecordType::kBlob, encode_blob(blob));
    if (!appended.is_ok()) return appended;
    ++appended_;
    apply_blob(std::move(blob));
  }
  EntryKey key{blob_id, solver, point};
  auto existing = entries_.find(key);
  if (existing != entries_.end()) return common::Status::ok();  // already persisted
  EntryRecord entry{blob_id, solver, point, result};
  common::Status appended = log_.append(RecordType::kEntry, encode_entry(entry));
  if (!appended.is_ok()) return appended;
  ++appended_;
  apply_entry(std::move(entry));
  return common::Status::ok();
}

SolveStore::StoredResult SolveStore::find(const api::InstanceDigest& digest,
                                          const std::string& instance_bytes,
                                          const std::string& solver,
                                          const PointKey& point) {
  common::MutexLock lock(*mutex_);
  const std::uint64_t blob_id = find_blob_id(digest, instance_bytes);
  if (blob_id == 0) return nullptr;
  auto it = entries_.find(EntryKey{blob_id, solver, point});
  if (it == entries_.end()) return nullptr;
  ++served_;
  return it->second;
}

SolveStore::StoredResult SolveStore::nearest_schedule(const api::InstanceDigest& digest,
                                                      const std::string& instance_bytes,
                                                      double deadline,
                                                      double* neighbor_deadline) {
  common::MutexLock lock(*mutex_);
  const std::uint64_t blob_id = find_blob_id(digest, instance_bytes);
  if (blob_id == 0) return nullptr;
  auto per_blob = schedules_.find(blob_id);
  if (per_blob == schedules_.end() || per_blob->second.empty()) return nullptr;
  const auto& by_deadline = per_blob->second;
  auto ge = by_deadline.lower_bound(deadline);
  auto best = by_deadline.end();
  if (ge != by_deadline.end()) best = ge;
  if (ge != by_deadline.begin()) {
    auto lt = std::prev(ge);
    if (best == by_deadline.end() ||
        deadline - lt->first < best->first - deadline) {
      best = lt;
    }
  }
  if (best == by_deadline.end()) return nullptr;
  if (neighbor_deadline != nullptr) *neighbor_deadline = best->first;
  return best->second;
}

common::Status SolveStore::refresh() {
  common::MutexLock lock(*mutex_);
  if (!options_.read_only) return common::Status::ok();  // writers are current
  // Buffer before applying: when poll() detects the file was replaced
  // (compaction) it re-delivers the *whole* new log, which must land in
  // cleared maps — and a poll that fails must leave the current state
  // untouched, not half-cleared.
  std::vector<std::pair<RecordType, std::string>> batch;
  common::Result<PollReport> polled =
      log_.poll([&batch](RecordType type, const std::string& payload) {
        batch.emplace_back(type, payload);
      });
  if (!polled.is_ok()) return polled.status();
  if (polled.value().replaced) {
    // The blob-id space may have been re-packed by the rewrite; rebuild
    // derived state from scratch out of the buffered records.
    blobs_.clear();
    blob_ids_.clear();
    entries_.clear();
    schedules_.clear();
    next_blob_id_ = 1;
    superseded_ = 0;
  }
  for (const auto& [type, payload] : batch) consume_record(type, payload);
  return common::Status::ok();
}

void SolveStore::for_each(
    const std::function<void(const api::InstanceDigest&, const std::string&,
                             const std::string&, const PointKey&, const StoredResult&)>&
        fn) {
  struct Row {
    api::InstanceDigest digest;
    std::shared_ptr<const std::string> bytes;
    std::string solver;
    PointKey point;
    StoredResult result;
  };
  std::vector<Row> snapshot;
  {
    common::MutexLock lock(*mutex_);
    snapshot.reserve(entries_.size());
    for (const auto& [key, result] : entries_) {
      auto blob = blobs_.find(key.blob_id);
      if (blob == blobs_.end()) continue;
      snapshot.push_back(Row{blob->second.digest, blob->second.bytes, key.solver,
                             key.point, result});
    }
  }
  // Unlocked on purpose: fn may insert into a SolveCache whose eviction
  // spills back into this store (shard lock -> store lock, never the
  // reverse while a lock is held here).
  for (const Row& row : snapshot) {
    fn(row.digest, *row.bytes, row.solver, row.point, row.result);
  }
}

StoreStats SolveStore::stats() const {
  common::MutexLock lock(*mutex_);
  StoreStats s;
  s.blobs = blobs_.size();
  s.entries = entries_.size();
  s.superseded = superseded_;
  s.file_bytes = log_.size_bytes();
  s.torn_bytes = log_.truncated_bytes();
  s.appended = appended_;
  s.served = served_;
  return s;
}

common::Status SolveStore::sync() {
  common::MutexLock lock(*mutex_);
  return log_.sync();
}

common::Result<StoreStats> SolveStore::stat(const std::string& path) {
  common::Result<RecordLog> log = RecordLog::open(path, /*read_only=*/true);
  if (!log.is_ok()) return log.status();
  StoreStats s;
  common::Result<PollReport> polled =
      log.value().poll([&s](RecordType type, const std::string&) {
        if (type == RecordType::kBlob) {
          ++s.blobs;
        } else {
          ++s.entries;
        }
      });
  if (!polled.is_ok()) return polled.status();
  s.file_bytes = log.value().size_bytes();
  s.torn_bytes = polled.value().torn_bytes;
  return s;
}

common::Result<StoreStats> SolveStore::verify(const std::string& path) {
  common::Result<RecordLog> log = RecordLog::open(path, /*read_only=*/true);
  if (!log.is_ok()) return log.status();
  StoreStats s;
  common::Status bad = common::Status::ok();
  std::unordered_map<std::uint64_t, bool> blob_seen;
  std::unordered_map<EntryKey, bool, EntryKeyHash> key_seen;
  std::size_t record = 0;
  common::Result<PollReport> polled =
      log.value().poll([&](RecordType type, const std::string& payload) {
        ++record;
        if (!bad.is_ok()) return;
        if (type == RecordType::kBlob) {
          common::Result<BlobRecord> blob = decode_blob(payload);
          if (!blob.is_ok()) {
            bad = common::Status::invalid("record " + std::to_string(record) + ": " +
                                          blob.status().message());
            return;
          }
          blob_seen[blob.value().id] = true;
          ++s.blobs;
        } else {
          common::Result<EntryRecord> entry = decode_entry(payload);
          if (!entry.is_ok()) {
            bad = common::Status::invalid("record " + std::to_string(record) + ": " +
                                          entry.status().message());
            return;
          }
          if (!blob_seen.count(entry.value().blob_id)) {
            bad = common::Status::invalid(
                "record " + std::to_string(record) + ": entry references blob " +
                std::to_string(entry.value().blob_id) + " that no prior record defines");
            return;
          }
          // Live-entry semantics, like open(): a re-recorded key counts
          // as superseded, not as a second entry.
          EntryKey key{entry.value().blob_id, std::move(entry.value().solver),
                       entry.value().point};
          if (key_seen.emplace(std::move(key), true).second) {
            ++s.entries;
          } else {
            ++s.superseded;
          }
        }
      });
  if (!polled.is_ok()) return polled.status();
  if (!bad.is_ok()) return bad;
  s.file_bytes = log.value().size_bytes();
  s.torn_bytes = polled.value().torn_bytes;
  return s;
}

common::Result<CompactionReport> SolveStore::compact(const std::string& path) {
  // Open as the (sole) writer: loads the live state, truncates any torn
  // tail, and holds the flock so no other writer can race the rewrite.
  StoreOptions options;
  options.path = path;
  common::Result<SolveStore> loaded = SolveStore::open(std::move(options));
  if (!loaded.is_ok()) return loaded.status();
  SolveStore& st = loaded.value();
  // Sole owner of a just-opened handle, but the guarded indexes are read
  // below — hold the (uncontended) lock for the rewrite.
  common::MutexLock lock(*st.mutex_);

  CompactionReport report;
  report.bytes_in = st.log_.size_bytes();
  report.blobs_in = st.blobs_.size();
  report.entries_in = st.entries_.size() + st.superseded_;

  const std::string tmp_path = path + ".compact.tmp";
  std::remove(tmp_path.c_str());
  common::Result<RecordLog> tmp = RecordLog::open(tmp_path, /*read_only=*/false);
  if (!tmp.is_ok()) return tmp.status();

  // Group entries per blob so each surviving blob record precedes its
  // entries; blobs no entry references are dropped (orphans).
  std::unordered_map<std::uint64_t, std::vector<const decltype(st.entries_)::value_type*>>
      by_blob;
  for (const auto& kv : st.entries_) by_blob[kv.first.blob_id].push_back(&kv);
  for (const auto& [blob_id, entry_rows] : by_blob) {
    const Blob& blob = st.blobs_.at(blob_id);
    common::Status appended = tmp.value().append(
        RecordType::kBlob, encode_blob(BlobRecord{blob_id, blob.digest, *blob.bytes}));
    if (!appended.is_ok()) return appended;
    ++report.blobs_out;
    for (const auto* kv : entry_rows) {
      EntryRecord entry{blob_id, kv->first.solver, kv->first.point, kv->second};
      appended = tmp.value().append(RecordType::kEntry, encode_entry(entry));
      if (!appended.is_ok()) return appended;
      ++report.entries_out;
    }
  }
  common::Status synced = tmp.value().sync();
  if (!synced.is_ok()) return synced;
  report.bytes_out = tmp.value().size_bytes();
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return common::Status::internal("cannot rename '" + tmp_path + "' over '" + path +
                                    "'");
  }
  // `st` still flocks the old inode until it goes out of scope; readers
  // notice the inode change on their next refresh and rebuild.
  return report;
}

}  // namespace easched::store
