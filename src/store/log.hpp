#pragma once
// RecordLog — the append-only binary file under the persistent solve-store.
//
// Layout: a 16-byte versioned header (magic, format version, flags)
// followed by self-delimiting records
//
//   [type u8][payload_len u64 LE][payload bytes][crc32 u32 LE]
//
// where the CRC covers type + length + payload. The framing makes the log
// recoverable by construction: a reader scans records until the first one
// that is truncated or fails its CRC and simply stops there, so a torn
// tail (a crash mid-append, or a writer racing a reader) costs at most the
// last record and is never fatal. A writer additionally truncates the file
// back to the last intact record on open, so the log re-enters the
// all-records-valid state before anything new is appended.
//
// Concurrency contract: single writer, many readers, no reader locks.
// Writers take a non-blocking flock(LOCK_EX) on the log fd for their whole
// lifetime — a second writer fails fast at open. Readers do not lock at
// all: they only ever observe a prefix of the writer's appends (appends
// are sequential), and the CRC framing turns a half-written tail into a
// clean end-of-log. poll() picks up records appended since the last scan;
// it also detects the file being replaced under the same path (compaction
// renames a rewritten log into place) via inode change and reports it so
// the owner can rebuild its state from scratch.
//
// Everything here is bytes-in/bytes-out; record payload schemas live in
// store/serialize.hpp.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hpp"

namespace easched::store {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `n` bytes, chainable via
/// `seed` (pass a previous return value to continue a running checksum).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Record kinds of the solve-store log (serialize.hpp defines payloads).
enum class RecordType : std::uint8_t {
  kBlob = 1,   ///< interner record: (blob id, digest, instance bytes)
  kEntry = 2,  ///< cache entry: (blob id, solver, point, solve result)
};

/// What poll() reports about the scan it just did.
struct PollReport {
  std::size_t records = 0;      ///< intact records delivered to the callback
  bool replaced = false;        ///< file was swapped under the path (compaction)
  std::uint64_t torn_bytes = 0; ///< trailing bytes ignored as torn/corrupt
};

class RecordLog {
 public:
  /// Opens (creating if absent, unless read-only) the log at `path`.
  /// Writer mode parses nothing by itself but validates the header, takes
  /// the single-writer flock and truncates a torn tail; read-only mode
  /// never locks and never modifies the file. Use poll() to scan records.
  static common::Result<RecordLog> open(const std::string& path, bool read_only);

  RecordLog(RecordLog&& other) noexcept;
  RecordLog& operator=(RecordLog&& other) noexcept;
  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;
  ~RecordLog();

  /// Appends one record (writer mode only) and advances the scan offset
  /// past it, so a writer does not re-deliver its own appends on poll().
  common::Status append(RecordType type, const std::string& payload);

  /// Scans records between the last scanned offset and the current end of
  /// file, invoking `fn` for each intact record in order. Stops silently
  /// at the first torn or corrupt record (the offset stays before it, so
  /// a record completed by the writer later is delivered by a later
  /// poll). When the file was atomically replaced (compaction), reopens
  /// it, resets the offset past the header and sets `replaced` — the
  /// caller must clear derived state and re-consume everything.
  common::Result<PollReport> poll(
      const std::function<void(RecordType, const std::string&)>& fn);

  const std::string& path() const noexcept { return path_; }
  bool read_only() const noexcept { return read_only_; }
  /// Bytes dropped by the writer's open-time tail truncation.
  std::uint64_t truncated_bytes() const noexcept { return truncated_bytes_; }
  /// Current on-disk size as of the last append/poll.
  std::uint64_t size_bytes() const noexcept { return end_offset_; }

  /// Flushes appended records to stable storage (fsync).
  common::Status sync();

 private:
  RecordLog() = default;

  common::Status validate_or_write_header();

  std::string path_;
  int fd_ = -1;
  bool read_only_ = true;
  std::uint64_t offset_ = 0;      ///< next byte poll() will look at
  std::uint64_t end_offset_ = 0;  ///< file size as last observed
  std::uint64_t truncated_bytes_ = 0;
};

}  // namespace easched::store
