#pragma once
// SolveStore — the persistent half of the solve cache.
//
// A SolveStore owns one RecordLog and mirrors it in memory: every interned
// instance blob and every live entry (latest record per key) is indexed so
// lookups cost a hash probe, never file I/O. The in-memory SolveCache
// (frontier/cache.hpp) attaches one store and drives it through three
// policies picked in StoreOptions:
//
//  * write_through — every freshly solved entry is appended immediately,
//    so the log is as warm as the process that just exited;
//  * load_on_open  — SolveCache::attach_store pre-populates its shards
//    from the store, so a restarted process replays previous traffic at
//    cache speed with zero solver calls;
//  * spill_on_evict — LRU-evicted entries that were never persisted are
//    appended instead of dropped (only meaningful with write_through off);
//  * warm_start    — on a miss with no stored entry, the nearest stored
//    schedule of the *same instance* (different deadline) seeds the
//    continuous solver's barrier via SolveOptions::start_durations.
//
// Identity is exact end to end: entries reference their instance by blob
// id (not digest), and blob resolution compares the canonical bytes, so a
// digest collision can never alias two instances — the same guarantee the
// in-memory interner gives. Lookups keyed by (digest, bytes) rather than
// process-local interner ids are what makes entries portable across
// processes.
//
// The offline maintenance entry points (stat / verify / compact) operate
// on a path; `easched_cli store` wraps them. Compaction rewrites the log
// keeping only the latest record per entry key and only blobs still
// referenced by a surviving entry, then atomically renames it into place
// (readers detect the inode swap on their next refresh and rebuild).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/digest.hpp"
#include "api/solver.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "store/log.hpp"
#include "store/serialize.hpp"

namespace easched::store {

struct StoreOptions {
  std::string path;
  bool read_only = false;     ///< reader mode: never locks, never appends
  bool write_through = true;  ///< append every fresh solve as it happens
  bool load_on_open = true;   ///< pre-populate an attaching SolveCache
  bool spill_on_evict = true; ///< persist unpersisted entries on LRU eviction
  bool warm_start = false;    ///< nearest-neighbour barrier seeding (opt-in:
                              ///< hints change low-order result bits, see
                              ///< api::SolveOptions::start_durations)
};

struct StoreStats {
  std::size_t blobs = 0;        ///< live interned instances
  std::size_t entries = 0;      ///< live entries (latest record per key)
  std::size_t superseded = 0;   ///< records replaced by a later same-key record
  std::uint64_t file_bytes = 0; ///< log size on disk
  std::uint64_t torn_bytes = 0; ///< bytes dropped as torn/corrupt tail
  std::size_t appended = 0;     ///< records appended by this handle
  std::size_t served = 0;       ///< lookups answered by this handle
};

struct CompactionReport {
  std::size_t blobs_in = 0, blobs_out = 0;
  std::size_t entries_in = 0, entries_out = 0;
  std::uint64_t bytes_in = 0, bytes_out = 0;
};

class SolveStore {
 public:
  using StoredResult = std::shared_ptr<const common::Result<api::SolveReport>>;

  /// Opens the log at options.path (creating it unless read_only) and
  /// loads every intact record into the in-memory index. A torn tail is
  /// truncated (writer) or ignored (reader), never fatal.
  static common::Result<SolveStore> open(StoreOptions options);

  SolveStore(SolveStore&&) = default;
  SolveStore& operator=(SolveStore&&) = default;

  const StoreOptions& options() const noexcept { return options_; }

  /// Persists one solved point. The blob is appended once per distinct
  /// instance; re-putting an identical key is a no-op (solves are
  /// deterministic, the stored record already says it all). Thread-safe.
  common::Status put(const api::InstanceDigest& digest, const std::string& instance_bytes,
                     const std::string& solver, const PointKey& point,
                     const StoredResult& result);

  /// Exact lookup; null on miss. Thread-safe.
  StoredResult find(const api::InstanceDigest& digest, const std::string& instance_bytes,
                    const std::string& solver, const PointKey& point);

  /// The stored *successful* BI-CRIT solve of the same instance whose
  /// effective deadline is closest to `deadline`; null when the instance
  /// has no such neighbour. Feeds warm starts. Thread-safe.
  StoredResult nearest_schedule(const api::InstanceDigest& digest,
                                const std::string& instance_bytes, double deadline,
                                double* neighbor_deadline = nullptr);

  /// Picks up records appended (or the whole log rewritten) by another
  /// process since open/the last refresh. Writer handles are their own
  /// source of truth and return immediately. Thread-safe.
  common::Status refresh();

  /// Every live entry with its instance resolved, for cache pre-loading.
  /// Snapshots under the lock, then invokes `fn` unlocked — `fn` may call
  /// back into anything, including a SolveCache that spills to this store.
  void for_each(const std::function<void(
                    const api::InstanceDigest& digest, const std::string& instance_bytes,
                    const std::string& solver, const PointKey& point,
                    const StoredResult& result)>& fn);

  StoreStats stats() const;

  /// Forces appended records to stable storage.
  common::Status sync();

  // ---- offline maintenance (easched_cli store) ----

  /// *Raw* record/byte counts of the log at `path` without decoding
  /// payloads — `entries` here counts entry *records*, superseded ones
  /// included (telling them apart requires decoding; use verify()).
  static common::Result<StoreStats> stat(const std::string& path);

  /// Full scan: every record's CRC *and* payload must decode, and every
  /// entry must reference a blob that precedes it. Counts live entries
  /// and superseded records separately (same semantics as open()).
  /// Returns the counts on success, the first inconsistency as a Status
  /// otherwise (a torn tail is reported in torn_bytes, not as an error —
  /// it is recoverable).
  static common::Result<StoreStats> verify(const std::string& path);

  /// Rewrites the log dropping superseded entry records and orphaned
  /// blobs, then atomically renames the rewrite into place. Requires the
  /// writer lock (fails fast when a live writer holds the log).
  static common::Result<CompactionReport> compact(const std::string& path);

 private:
  explicit SolveStore(StoreOptions options, RecordLog log)
      : options_(std::move(options)), log_(std::move(log)) {}

  struct Blob {
    api::InstanceDigest digest;
    std::shared_ptr<const std::string> bytes;
  };

  /// Exact entry identity: blob id + solver name + point scalars.
  struct EntryKey {
    std::uint64_t blob_id = 0;
    std::string solver;
    PointKey point;

    friend bool operator==(const EntryKey& a, const EntryKey& b) noexcept {
      return a.blob_id == b.blob_id && a.point == b.point && a.solver == b.solver;
    }
  };
  struct EntryKeyHash {
    std::size_t operator()(const EntryKey& k) const noexcept;
  };

  /// Applies one decoded record to the in-memory index (lock held).
  void apply_blob(BlobRecord blob) EASCHED_REQUIRES(*mutex_);
  void apply_entry(EntryRecord entry) EASCHED_REQUIRES(*mutex_);
  void consume_record(RecordType type, const std::string& payload)
      EASCHED_REQUIRES(*mutex_);
  /// Blob id for (digest, bytes), or 0 when the pair is not interned.
  std::uint64_t find_blob_id(const api::InstanceDigest& digest,
                             const std::string& bytes) const EASCHED_REQUIRES(*mutex_);

  StoreOptions options_;  ///< immutable after open(); read lock-free

  /// Heap-allocated so SolveStore stays movable (a Mutex is not); every
  /// index below plus the log is guarded by it. Lock order: a SolveCache
  /// shard mutex may be held around put()/find() only via the documented
  /// shard -> store direction (see common/mutex.hpp).
  mutable std::unique_ptr<common::Mutex> mutex_ = std::make_unique<common::Mutex>();
  RecordLog log_ EASCHED_GUARDED_BY(*mutex_);
  std::unordered_map<std::uint64_t, Blob> blobs_
      EASCHED_GUARDED_BY(*mutex_);  ///< id -> blob
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> blob_ids_
      EASCHED_GUARDED_BY(*mutex_);  ///< digest.lo -> ids
  std::unordered_map<EntryKey, StoredResult, EntryKeyHash> entries_
      EASCHED_GUARDED_BY(*mutex_);
  /// Per-blob deadline -> successful BI-CRIT result, for nearest_schedule.
  std::unordered_map<std::uint64_t, std::map<double, StoredResult>> schedules_
      EASCHED_GUARDED_BY(*mutex_);
  std::uint64_t next_blob_id_ EASCHED_GUARDED_BY(*mutex_) = 1;
  std::size_t superseded_ EASCHED_GUARDED_BY(*mutex_) = 0;
  std::size_t appended_ EASCHED_GUARDED_BY(*mutex_) = 0;
  mutable std::size_t served_ EASCHED_GUARDED_BY(*mutex_) = 0;
};

}  // namespace easched::store
