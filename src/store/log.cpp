#include "store/log.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace easched::store {
namespace {

// Header: 8-byte magic + u32 format version + u32 flags, 16 bytes total.
constexpr char kMagic[8] = {'E', 'A', 'S', 'S', 'T', 'O', 'R', 'E'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint64_t kHeaderBytes = 16;
// type(1) + payload_len(8) before the payload, crc(4) after it.
constexpr std::uint64_t kFramePrefix = 9;
constexpr std::uint64_t kFrameSuffix = 4;
// Payloads beyond this are treated as corruption, not data: the largest
// legitimate record (an interned instance blob) is linear in the task
// count, nowhere near 1 GiB.
constexpr std::uint64_t kMaxPayload = 1ull << 30;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string header_bytes() {
  std::string out(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, 0);  // flags, reserved
  return out;
}

common::Status errno_status(const std::string& what, const std::string& path) {
  return common::Status::internal(what + " '" + path + "': " + std::strerror(errno));
}

/// Reads exactly [offset, offset+n) into `out` (resized); short reads past
/// EOF shrink `out` to what was available.
common::Status read_range(int fd, std::uint64_t offset, std::uint64_t n,
                          std::string& out, const std::string& path) {
  out.resize(static_cast<std::size_t>(n));
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::pread(fd, &out[got], static_cast<std::size_t>(n - got),
                              static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return errno_status("cannot read store log", path);
    }
    if (r == 0) break;  // EOF: the writer appended less than we hoped
    got += static_cast<std::size_t>(r);
  }
  out.resize(got);
  return common::Status::ok();
}

common::Status write_all(int fd, std::uint64_t offset, const std::string& bytes,
                         const std::string& path) {
  std::size_t put = 0;
  while (put < bytes.size()) {
    const ssize_t w = ::pwrite(fd, bytes.data() + put, bytes.size() - put,
                               static_cast<off_t>(offset + put));
    if (w < 0) {
      if (errno == EINTR) continue;
      return errno_status("cannot write store log", path);
    }
    put += static_cast<std::size_t>(w);
  }
  return common::Status::ok();
}

/// Scans the frames inside `buf` (which starts at file offset `base`),
/// invoking `fn` per intact record; returns the buffer offset of the first
/// byte that is not part of an intact record (== buf.size() when clean).
std::size_t scan_frames(const std::string& buf,
                        const std::function<void(RecordType, const std::string&)>* fn) {
  std::size_t at = 0;
  std::string payload;
  while (buf.size() - at >= kFramePrefix + kFrameSuffix) {
    const std::uint8_t type = static_cast<std::uint8_t>(buf[at]);
    const std::uint64_t len = load_u64(buf.data() + at + 1);
    if (len > kMaxPayload) break;  // insane length: treat as corruption
    const std::uint64_t frame = kFramePrefix + len + kFrameSuffix;
    if (buf.size() - at < frame) break;  // torn tail: record not fully on disk
    const std::uint32_t want = load_u32(buf.data() + at + kFramePrefix + len);
    const std::uint32_t got = crc32(buf.data() + at, kFramePrefix + len);
    if (want != got) break;  // corrupt record: stop at the last intact one
    if (type != static_cast<std::uint8_t>(RecordType::kBlob) &&
        type != static_cast<std::uint8_t>(RecordType::kEntry)) {
      break;  // unknown type in a v1 log: written by nothing we know
    }
    if (fn != nullptr) {
      payload.assign(buf, at + kFramePrefix, static_cast<std::size_t>(len));
      (*fn)(static_cast<RecordType>(type), payload);
    }
    at += static_cast<std::size_t>(frame);
  }
  return at;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return ~crc;
}

common::Result<RecordLog> RecordLog::open(const std::string& path, bool read_only) {
  RecordLog log;
  log.path_ = path;
  log.read_only_ = read_only;
  log.fd_ = read_only ? ::open(path.c_str(), O_RDONLY)
                      : ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (log.fd_ < 0) {
    if (read_only && errno == ENOENT) {
      return common::Status::not_found("store log '" + path + "' does not exist");
    }
    return errno_status("cannot open store log", path);
  }
  if (!read_only && ::flock(log.fd_, LOCK_EX | LOCK_NB) != 0) {
    return common::Status::unsupported(
        "store log '" + path +
        "' is held by another writer (single-writer/multi-reader)");
  }
  common::Status header = log.validate_or_write_header();
  if (!header.is_ok()) return header;

  struct stat st {};
  if (::fstat(log.fd_, &st) != 0) return errno_status("cannot stat store log", path);
  log.end_offset_ = static_cast<std::uint64_t>(st.st_size);
  log.offset_ = kHeaderBytes;

  if (!read_only && log.end_offset_ > kHeaderBytes) {
    // Re-enter the all-records-valid state: find the end of the intact
    // prefix and drop everything after it before appending anything new.
    std::string buf;
    common::Status read =
        read_range(log.fd_, kHeaderBytes, log.end_offset_ - kHeaderBytes, buf, path);
    if (!read.is_ok()) return read;
    const std::uint64_t good = kHeaderBytes + scan_frames(buf, nullptr);
    if (good < log.end_offset_) {
      if (::ftruncate(log.fd_, static_cast<off_t>(good)) != 0) {
        return errno_status("cannot truncate torn store log", path);
      }
      log.truncated_bytes_ = log.end_offset_ - good;
      log.end_offset_ = good;
    }
  }
  return log;
}

common::Status RecordLog::validate_or_write_header() {
  struct stat st {};
  if (::fstat(fd_, &st) != 0) return errno_status("cannot stat store log", path_);
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < kHeaderBytes) {
    // Empty (fresh create) or torn mid-header-write: no record can exist
    // yet, so a writer may safely start the file over.
    if (read_only_) {
      return common::Status::invalid("store log '" + path_ +
                                     "' is shorter than its header");
    }
    if (::ftruncate(fd_, 0) != 0) return errno_status("cannot reset store log", path_);
    return write_all(fd_, 0, header_bytes(), path_);
  }
  std::string have;
  common::Status read = read_range(fd_, 0, kHeaderBytes, have, path_);
  if (!read.is_ok()) return read;
  if (have.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return common::Status::invalid("'" + path_ + "' is not a solve-store log");
  }
  const std::uint32_t version = load_u32(have.data() + sizeof(kMagic));
  if (version != kFormatVersion) {
    return common::Status::unsupported("store log '" + path_ + "' has format version " +
                                       std::to_string(version) + ", expected " +
                                       std::to_string(kFormatVersion));
  }
  return common::Status::ok();
}

RecordLog::RecordLog(RecordLog&& other) noexcept { *this = std::move(other); }

RecordLog& RecordLog::operator=(RecordLog&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    read_only_ = other.read_only_;
    offset_ = other.offset_;
    end_offset_ = other.end_offset_;
    truncated_bytes_ = other.truncated_bytes_;
  }
  return *this;
}

RecordLog::~RecordLog() {
  if (fd_ >= 0) ::close(fd_);  // also releases the writer flock
}

common::Status RecordLog::append(RecordType type, const std::string& payload) {
  if (fd_ < 0) return common::Status::internal("append on a moved-from RecordLog");
  if (read_only_) {
    return common::Status::unsupported("store log '" + path_ + "' is open read-only");
  }
  std::string frame;
  frame.reserve(kFramePrefix + payload.size() + kFrameSuffix);
  frame.push_back(static_cast<char>(type));
  put_u64(frame, payload.size());
  frame += payload;
  put_u32(frame, crc32(frame.data(), frame.size()));
  common::Status written = write_all(fd_, end_offset_, frame, path_);
  if (!written.is_ok()) return written;
  end_offset_ += frame.size();
  // A writer is its own source of truth for what it appended; skip
  // re-delivering it through poll().
  if (offset_ == end_offset_ - frame.size()) offset_ = end_offset_;
  return common::Status::ok();
}

common::Result<PollReport> RecordLog::poll(
    const std::function<void(RecordType, const std::string&)>& fn) {
  if (fd_ < 0) return common::Status::internal("poll on a moved-from RecordLog");
  PollReport report;

  // Compaction replaces the file under the path; a reader still holding
  // the old inode would otherwise be frozen in time. Detect and reopen.
  struct stat by_path {};
  struct stat by_fd {};
  if (::stat(path_.c_str(), &by_path) == 0 && ::fstat(fd_, &by_fd) == 0 &&
      (by_path.st_ino != by_fd.st_ino || by_path.st_dev != by_fd.st_dev)) {
    common::Result<RecordLog> reopened = RecordLog::open(path_, read_only_);
    if (!reopened.is_ok()) return reopened.status();
    *this = std::move(reopened).take();
    report.replaced = true;
  }

  struct stat st {};
  if (::fstat(fd_, &st) != 0) return errno_status("cannot stat store log", path_);
  end_offset_ = static_cast<std::uint64_t>(st.st_size);
  if (end_offset_ <= offset_) return report;

  std::string buf;
  common::Status read = read_range(fd_, offset_, end_offset_ - offset_, buf, path_);
  if (!read.is_ok()) return read;
  std::size_t delivered_records = 0;
  const std::function<void(RecordType, const std::string&)> counting =
      [&](RecordType type, const std::string& payload) {
        ++delivered_records;
        if (fn) fn(type, payload);
      };
  const std::size_t good = scan_frames(buf, &counting);
  offset_ += good;
  report.records = delivered_records;
  report.torn_bytes = buf.size() - good;
  return report;
}

common::Status RecordLog::sync() {
  if (fd_ < 0) return common::Status::internal("sync on a moved-from RecordLog");
  if (read_only_) return common::Status::ok();
  if (::fsync(fd_) != 0) return errno_status("cannot fsync store log", path_);
  return common::Status::ok();
}

}  // namespace easched::store
