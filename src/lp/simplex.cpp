#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/status.hpp"
#include "common/tolerance.hpp"
#include "linalg/matrix.hpp"

namespace easched::lp {
namespace {

using easched::common::tol::kPivot;
using easched::common::tol::kReducedCost;
using linalg::Matrix;

// How each model variable maps into standard-form variables:
//   x = shift + sign*std[col_a] - (split ? std[col_b] : 0)
struct VarMap {
  int col_a = -1;
  int col_b = -1;  // only for free variables (x = a - b)
  double shift = 0.0;
  double sign = 1.0;
};

struct StdRow {
  std::vector<double> coef;  // dense over structural std vars
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

// Dense two-phase tableau simplex over the standard-form problem.
class Tableau {
 public:
  Tableau(std::vector<StdRow> rows, std::vector<double> cost, const SimplexOptions& opt)
      : nstruct_(static_cast<int>(cost.size())), cost_(std::move(cost)), opt_(opt) {
    build(std::move(rows));
  }

  LpStatus run(int& total_iterations) {
    LpStatus s1 = optimize(/*phase1=*/true);
    total_iterations = iterations_;
    if (s1 == LpStatus::kIterationLimit) return s1;
    if (phase1_objective() > 1e-7) return LpStatus::kInfeasible;
    to_phase2();
    LpStatus s2 = optimize(/*phase1=*/false);
    total_iterations = iterations_;
    return s2;
  }

  // Value of structural standard variable j in the current basis.
  double structural_value(int j) const {
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] == j) return rhs(r);
    }
    return 0.0;
  }

  bool structural_is_basic(int j) const {
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] == j) return true;
    }
    return false;
  }

 private:
  // Tableau layout: T_ is (m+1) x (ncols+1); last row is the reduced-cost
  // row, last column the RHS. Columns: [0,nstruct) structural, then slacks
  // and surpluses, then artificials.
  double rhs(int r) const { return T_(static_cast<std::size_t>(r), static_cast<std::size_t>(ncols_)); }

  void build(std::vector<StdRow> rows) {
    m_ = static_cast<int>(rows.size());
    // Normalise RHS >= 0.
    for (auto& row : rows) {
      if (row.rhs < 0.0) {
        row.rhs = -row.rhs;
        for (double& c : row.coef) c = -c;
        row.sense = row.sense == Sense::kLessEqual
                        ? Sense::kGreaterEqual
                        : (row.sense == Sense::kGreaterEqual ? Sense::kLessEqual : Sense::kEqual);
      }
    }
    int nslack = 0, nartificial = 0;
    for (const auto& row : rows) {
      if (row.sense != Sense::kEqual) ++nslack;
      if (row.sense != Sense::kLessEqual) ++nartificial;
    }
    ncols_ = nstruct_ + nslack + nartificial;
    artificial_begin_ = nstruct_ + nslack;
    T_ = Matrix(static_cast<std::size_t>(m_) + 1, static_cast<std::size_t>(ncols_) + 1);
    basis_.assign(static_cast<std::size_t>(m_), -1);

    int next_slack = nstruct_;
    int next_art = artificial_begin_;
    for (int r = 0; r < m_; ++r) {
      const auto& row = rows[static_cast<std::size_t>(r)];
      for (int j = 0; j < nstruct_; ++j) {
        T_(static_cast<std::size_t>(r), static_cast<std::size_t>(j)) =
            row.coef[static_cast<std::size_t>(j)];
      }
      T_(static_cast<std::size_t>(r), static_cast<std::size_t>(ncols_)) = row.rhs;
      switch (row.sense) {
        case Sense::kLessEqual:
          T_(static_cast<std::size_t>(r), static_cast<std::size_t>(next_slack)) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_slack++;
          break;
        case Sense::kGreaterEqual:
          T_(static_cast<std::size_t>(r), static_cast<std::size_t>(next_slack)) = -1.0;
          ++next_slack;
          T_(static_cast<std::size_t>(r), static_cast<std::size_t>(next_art)) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
        case Sense::kEqual:
          T_(static_cast<std::size_t>(r), static_cast<std::size_t>(next_art)) = 1.0;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
      }
    }
    // Phase-1 reduced costs: cost 1 on artificials, reduced against the
    // artificial basis (subtract each artificial-basic row).
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= artificial_begin_) {
        for (int c = 0; c <= ncols_; ++c) {
          T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(c)) -=
              T_(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
        }
      }
    }
    for (int a = artificial_begin_; a < ncols_; ++a) {
      T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(a)) += 1.0;
    }
    phase1_ = true;
  }

  double phase1_objective() const {
    return -T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(ncols_));
  }

  void to_phase2() {
    // Pivot basic artificials out where possible; rows whose non-artificial
    // entries are all ~0 are redundant and stay inert.
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] < artificial_begin_) continue;
      int enter = -1;
      for (int j = 0; j < artificial_begin_; ++j) {
        if (std::fabs(T_(static_cast<std::size_t>(r), static_cast<std::size_t>(j))) > 1e-7) {
          enter = j;
          break;
        }
      }
      if (enter >= 0) pivot(r, enter);
    }
    // Rebuild the cost row for the real objective.
    for (int c = 0; c <= ncols_; ++c) {
      T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(c)) = 0.0;
    }
    for (int j = 0; j < nstruct_; ++j) {
      T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(j)) =
          cost_[static_cast<std::size_t>(j)];
    }
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      const double cb = b < nstruct_ ? cost_[static_cast<std::size_t>(b)] : 0.0;
      if (cb == 0.0) continue;
      for (int c = 0; c <= ncols_; ++c) {
        T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(c)) -=
            cb * T_(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
      }
    }
    phase1_ = false;
  }

  LpStatus optimize(bool phase1) {
    const int cap = opt_.max_iterations > 0 ? opt_.max_iterations
                                            : std::max(10000, 200 * (m_ + ncols_));
    int stall = 0;
    double last_obj = -T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(ncols_));
    bool bland = false;
    for (int it = 0; it < cap; ++it) {
      const int enter = choose_entering(phase1, bland);
      if (enter < 0) return LpStatus::kOptimal;
      const int leave = choose_leaving(enter);
      if (leave < 0) return LpStatus::kUnbounded;
      pivot(leave, enter);
      ++iterations_;
      const double obj = -T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(ncols_));
      if (obj < last_obj - 1e-12) {
        stall = 0;
        last_obj = obj;
      } else if (++stall >= opt_.bland_after_stall) {
        bland = true;  // anti-cycling from here on
      }
    }
    return LpStatus::kIterationLimit;
  }

  int choose_entering(bool phase1, bool bland) const {
    const int limit = phase1 ? ncols_ : artificial_begin_;  // artificials banned in phase 2
    int best = -1;
    double best_cost = -kReducedCost;
    for (int j = 0; j < limit; ++j) {
      const double cj = T_(static_cast<std::size_t>(m_), static_cast<std::size_t>(j));
      if (cj < -kReducedCost) {
        if (bland) return j;
        if (cj < best_cost) {
          best_cost = cj;
          best = j;
        }
      }
    }
    return best;
  }

  int choose_leaving(int enter) const {
    int best = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m_; ++r) {
      const double a = T_(static_cast<std::size_t>(r), static_cast<std::size_t>(enter));
      if (a <= kPivot) continue;
      const double ratio = rhs(r) / a;
      // Ties broken by smallest basis index (lexicographic flavour, helps
      // against cycling under Dantzig pricing too).
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && best >= 0 &&
           basis_[static_cast<std::size_t>(r)] < basis_[static_cast<std::size_t>(best)])) {
        best_ratio = ratio;
        best = r;
      }
    }
    return best;
  }

  void pivot(int prow, int pcol) {
    const double p = T_(static_cast<std::size_t>(prow), static_cast<std::size_t>(pcol));
    EASCHED_CHECK_MSG(std::fabs(p) > 1e-300, "simplex pivot on zero element");
    for (int c = 0; c <= ncols_; ++c) {
      T_(static_cast<std::size_t>(prow), static_cast<std::size_t>(c)) /= p;
    }
    for (int r = 0; r <= m_; ++r) {
      if (r == prow) continue;
      const double f = T_(static_cast<std::size_t>(r), static_cast<std::size_t>(pcol));
      if (f == 0.0) continue;
      for (int c = 0; c <= ncols_; ++c) {
        double v = T_(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) -
                   f * T_(static_cast<std::size_t>(prow), static_cast<std::size_t>(c));
        if (std::fabs(v) < 1e-13) v = 0.0;
        T_(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = v;
      }
    }
    basis_[static_cast<std::size_t>(prow)] = pcol;
  }

  int nstruct_ = 0;
  int m_ = 0;
  int ncols_ = 0;
  int artificial_begin_ = 0;
  Matrix T_;
  std::vector<int> basis_;
  std::vector<double> cost_;
  SimplexOptions opt_;
  bool phase1_ = true;
  int iterations_ = 0;
};

}  // namespace

LpSolution solve(const LpModel& model, const SimplexOptions& options) {
  LpSolution out;
  const int nvars = model.num_variables();

  // ---- Standard-form conversion -------------------------------------------
  std::vector<VarMap> map(static_cast<std::size_t>(nvars));
  int nstruct = 0;
  std::vector<std::pair<int, double>> upper_rows;  // (std col, upper bound) rows to add
  for (int j = 0; j < nvars; ++j) {
    const auto& v = model.variable(j);
    auto& vm = map[static_cast<std::size_t>(j)];
    const bool lo_finite = std::isfinite(v.lo);
    const bool hi_finite = std::isfinite(v.hi);
    if (!lo_finite && !hi_finite) {
      vm.col_a = nstruct++;
      vm.col_b = nstruct++;
      vm.shift = 0.0;
      vm.sign = 1.0;
    } else if (!lo_finite) {  // x = hi - a, a >= 0
      vm.col_a = nstruct++;
      vm.shift = v.hi;
      vm.sign = -1.0;
    } else {  // x = lo + a, a >= 0
      vm.col_a = nstruct++;
      vm.shift = v.lo;
      vm.sign = 1.0;
      if (hi_finite) upper_rows.emplace_back(vm.col_a, v.hi - v.lo);
    }
  }

  std::vector<double> cost(static_cast<std::size_t>(nstruct), 0.0);
  for (int j = 0; j < nvars; ++j) {
    const auto& v = model.variable(j);
    const auto& vm = map[static_cast<std::size_t>(j)];
    cost[static_cast<std::size_t>(vm.col_a)] += v.obj * vm.sign;
    if (vm.col_b >= 0) cost[static_cast<std::size_t>(vm.col_b)] -= v.obj;
  }

  std::vector<StdRow> rows;
  rows.reserve(static_cast<std::size_t>(model.num_constraints()) + upper_rows.size());
  for (int i = 0; i < model.num_constraints(); ++i) {
    const auto& row = model.row(i);
    StdRow sr;
    sr.coef.assign(static_cast<std::size_t>(nstruct), 0.0);
    sr.sense = row.sense;
    sr.rhs = row.rhs;
    for (const auto& t : row.terms) {
      const auto& vm = map[static_cast<std::size_t>(t.var)];
      sr.coef[static_cast<std::size_t>(vm.col_a)] += t.coef * vm.sign;
      if (vm.col_b >= 0) sr.coef[static_cast<std::size_t>(vm.col_b)] -= t.coef;
      sr.rhs -= t.coef * vm.shift;
    }
    rows.push_back(std::move(sr));
  }
  for (const auto& [col, ub] : upper_rows) {
    StdRow sr;
    sr.coef.assign(static_cast<std::size_t>(nstruct), 0.0);
    sr.coef[static_cast<std::size_t>(col)] = 1.0;
    sr.sense = Sense::kLessEqual;
    sr.rhs = ub;
    rows.push_back(std::move(sr));
  }

  // ---- Solve ----------------------------------------------------------------
  Tableau tab(std::move(rows), std::move(cost), options);
  out.status = tab.run(out.iterations);
  if (out.status == LpStatus::kInfeasible) {
    out.detail = "phase 1 ended with positive artificial mass";
    return out;
  }
  if (out.status == LpStatus::kUnbounded) {
    out.detail = "phase 2 found an unbounded improving ray";
    return out;
  }
  if (out.status == LpStatus::kIterationLimit) {
    out.detail = "pivot cap reached";
    return out;
  }

  // ---- Recover model-space solution -----------------------------------------
  out.x.assign(static_cast<std::size_t>(nvars), 0.0);
  out.is_basic.assign(static_cast<std::size_t>(nvars), false);
  for (int j = 0; j < nvars; ++j) {
    const auto& vm = map[static_cast<std::size_t>(j)];
    double val = vm.shift + vm.sign * tab.structural_value(vm.col_a);
    bool basic = tab.structural_is_basic(vm.col_a);
    if (vm.col_b >= 0) {
      val -= tab.structural_value(vm.col_b);
      basic = basic || tab.structural_is_basic(vm.col_b);
    }
    out.x[static_cast<std::size_t>(j)] = val;
    out.is_basic[static_cast<std::size_t>(j)] = basic;
  }
  out.objective = model.objective_value(out.x);
  return out;
}

}  // namespace easched::lp
