#pragma once
// Two-phase primal simplex (dense tableau) for LpModel.
//
// Design choices:
//  * Full tableau with Dantzig pricing and a Bland's-rule fallback after a
//    stall threshold (guarantees termination on degenerate instances).
//  * Phase 1 minimises the sum of artificial variables; redundant rows are
//    dropped when an artificial cannot be pivoted out.
//  * Basic optimal solutions are vertices of the polytope — exactly the
//    objects the paper's "two speeds per task suffice" VDD-HOPPING lemma
//    talks about, so benches inspect the returned basis support.

#include <string>
#include <vector>

#include "lp/model.hpp"

namespace easched::lp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

constexpr const char* to_string(LpStatus s) noexcept {
  switch (s) {
    case LpStatus::kOptimal: return "OPTIMAL";
    case LpStatus::kInfeasible: return "INFEASIBLE";
    case LpStatus::kUnbounded: return "UNBOUNDED";
    case LpStatus::kIterationLimit: return "ITERATION_LIMIT";
  }
  return "UNKNOWN";
}

struct SimplexOptions {
  /// Hard cap on pivots per phase (0 => 200*(m+n), the usual safe bound).
  int max_iterations = 0;
  /// Switch from Dantzig to Bland pricing after this many pivots without
  /// objective progress.
  int bland_after_stall = 50;
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;          ///< primal values, one per model variable
  std::vector<bool> is_basic;     ///< per model variable: basic in final tableau?
  int iterations = 0;             ///< total pivots (both phases)
  std::string detail;             ///< diagnostic message

  bool optimal() const noexcept { return status == LpStatus::kOptimal; }
};

/// Solves `min c^T x` for the given model.
LpSolution solve(const LpModel& model, const SimplexOptions& options = {});

}  // namespace easched::lp
