#pragma once
// Linear-program model builder.
//
// The VDD-HOPPING BI-CRIT result of the paper ("solvable in polynomial time
// using a linear program", section IV) is exercised through this API. The
// model is solver-agnostic; lp/simplex.hpp provides the bundled solver.

#include <limits>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace easched::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Constraint sense.
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

/// One nonzero of a constraint row.
struct LinearTerm {
  int var = -1;
  double coef = 0.0;
};

/// A linear program: minimize c^T x subject to rows and variable bounds.
class LpModel {
 public:
  /// Adds a variable with bounds [lo, hi] (hi may be kInf, lo may be -kInf)
  /// and objective coefficient obj. Returns the variable index.
  int add_variable(double lo, double hi, double obj, std::string name = {});

  /// Adds a constraint `sum(terms) sense rhs`. Returns the row index.
  /// Duplicate variable entries in `terms` are summed.
  int add_constraint(std::vector<LinearTerm> terms, Sense sense, double rhs,
                     std::string name = {});

  int num_variables() const noexcept { return static_cast<int>(vars_.size()); }
  int num_constraints() const noexcept { return static_cast<int>(rows_.size()); }

  struct Variable {
    double lo = 0.0, hi = kInf, obj = 0.0;
    std::string name;
  };
  struct Row {
    std::vector<LinearTerm> terms;
    Sense sense = Sense::kLessEqual;
    double rhs = 0.0;
    std::string name;
  };

  const Variable& variable(int j) const { return vars_.at(static_cast<std::size_t>(j)); }
  const Row& row(int i) const { return rows_.at(static_cast<std::size_t>(i)); }

  /// Objective value of a point (no feasibility check).
  double objective_value(const std::vector<double>& x) const;

  /// Largest constraint violation (0 when feasible); bound violations included.
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
};

}  // namespace easched::lp
