#include "lp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace easched::lp {

int LpModel::add_variable(double lo, double hi, double obj, std::string name) {
  EASCHED_CHECK_MSG(lo <= hi, "variable bounds must satisfy lo <= hi");
  vars_.push_back(Variable{lo, hi, obj, std::move(name)});
  return static_cast<int>(vars_.size()) - 1;
}

int LpModel::add_constraint(std::vector<LinearTerm> terms, Sense sense, double rhs,
                            std::string name) {
  // Canonicalise: merge duplicate variables, drop explicit zeros.
  std::map<int, double> merged;
  for (const auto& t : terms) {
    EASCHED_CHECK_MSG(t.var >= 0 && t.var < num_variables(), "constraint references unknown variable");
    merged[t.var] += t.coef;
  }
  std::vector<LinearTerm> canon;
  canon.reserve(merged.size());
  for (const auto& [v, c] : merged) {
    if (c != 0.0) canon.push_back(LinearTerm{v, c});
  }
  rows_.push_back(Row{std::move(canon), sense, rhs, std::move(name)});
  return static_cast<int>(rows_.size()) - 1;
}

double LpModel::objective_value(const std::vector<double>& x) const {
  double obj = 0.0;
  for (std::size_t j = 0; j < vars_.size(); ++j) obj += vars_[j].obj * x[j];
  return obj;
}

double LpModel::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    worst = std::max(worst, vars_[j].lo - x[j]);
    worst = std::max(worst, x[j] - vars_[j].hi);
  }
  for (const auto& row : rows_) {
    double lhs = 0.0;
    for (const auto& t : row.terms) lhs += t.coef * x[static_cast<std::size_t>(t.var)];
    switch (row.sense) {
      case Sense::kLessEqual: worst = std::max(worst, lhs - row.rhs); break;
      case Sense::kGreaterEqual: worst = std::max(worst, row.rhs - lhs); break;
      case Sense::kEqual: worst = std::max(worst, std::fabs(lhs - row.rhs)); break;
    }
  }
  return std::max(worst, 0.0);
}

}  // namespace easched::lp
