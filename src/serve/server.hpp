#pragma once
// serve::Server — the multi-tenant scheduling daemon.
//
// One Server multiplexes any number of TCP connections onto one shared
// engine::Engine: a single poll(2) loop owns every socket, decodes
// protocol frames (serve/protocol.hpp), turns requests into Engine
// submits, and flushes responses as the engine's worker threads complete
// them. The loop itself never solves anything — a request costs it one
// decode + one submit — so a slow sweep for one client never stalls
// another client's traffic.
//
// Multi-tenancy: every connection handshakes with a tenant id, and the
// server folds that id into each request's cache namespace
// (api::SolveOptions::cache_namespace). Tenants therefore never share
// cache entries, store blobs or warm-start neighbours — isolation falls
// out of the digest identity, with no second key dimension anywhere.
//
// Admission control is layered:
//  * per-tenant quota (ServerConfig::tenant_quota): at most N requests of
//    one tenant in flight; requests beyond it are shed *synchronously*
//    with a kOverloaded response, before touching the engine;
//  * global queue cap (EngineConfig::max_queued_jobs, configured on the
//    engine the caller passes in): over-cap submits complete immediately
//    with kOverloaded, which flows back as a normal response;
//  * per-job deadlines (request job_deadline_ms, or the server default):
//    queued jobs expire with kDeadlineExceeded, running sweeps are
//    cancelled cooperatively mid-flight by the engine's deadline watch.
//
// Responses are completion-driven: a submit's JobHandle::on_complete
// callback encodes the response on the worker thread, appends it to the
// connection's ready queue and pokes the poll loop through a self-pipe.
// No thread ever blocks on a job, so hundreds of in-flight jobs need
// exactly one serving thread.
//
// The Server blocks in run() (the CLI's `easched_cli serve`) or runs on
// an owned background thread via start()/stop() (tests and the load
// bench). stop() is safe with jobs still in flight: late completions
// find their connection closed and are dropped.

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "engine/engine.hpp"

namespace easched::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Fairness quota: max in-flight requests per tenant; over-quota
  /// requests are shed with kOverloaded. 0 = unbounded.
  std::size_t tenant_quota = 0;
  /// Job deadline applied to requests that carry none (0 = none).
  double default_job_deadline_ms = 0.0;
  /// listen(2) backlog.
  int backlog = 16;
};

/// Monotonic daemon counters (whole lifetime, all tenants).
struct ServerStats {
  std::uint64_t connections = 0;      ///< handshakes accepted
  std::uint64_t requests = 0;         ///< well-formed requests received
  std::uint64_t accepted = 0;         ///< admitted to the engine
  std::uint64_t shed = 0;             ///< rejected by quota or engine cap
  std::uint64_t completed = 0;        ///< responses sent for admitted jobs
  std::uint64_t deadline_exceeded = 0;  ///< completed with an expired job deadline
  std::uint64_t protocol_errors = 0;  ///< bad frames / undecodable payloads
};

class Server {
 public:
  /// Binds and listens (errors surface here, not in run()). `engine` is
  /// not owned and must outlive the Server; its worker pool, cache and
  /// store are the daemon's execution backend.
  static common::Result<Server> create(engine::Engine* engine, ServerConfig config);

  Server(Server&&) noexcept;
  Server& operator=(Server&&) noexcept;
  /// Stops the serving loop (if running) and closes every socket.
  ~Server();

  /// The bound port (the ephemeral one when config.port was 0).
  int port() const noexcept;

  /// Serves until stop() — the blocking entry point the CLI uses.
  common::Status run();

  /// Runs the serve loop on an owned background thread.
  common::Status start();

  /// Signals the loop to exit and joins the background thread (if any).
  /// Idempotent; in-flight engine jobs keep running to completion, their
  /// responses are discarded.
  void stop();

  /// Async-signal-safe stop request (one atomic store, no locks, no
  /// join): the serving loop notices within its poll interval and run()
  /// returns. The CLI's SIGINT/SIGTERM handler calls this; everything
  /// else should call stop().
  void request_stop() noexcept;

  ServerStats stats() const;

 private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace easched::serve
