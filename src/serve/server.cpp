#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "graph/io.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "obs/metrics.hpp"
#include "sched/list_scheduler.hpp"
#include "serve/protocol.hpp"

namespace easched::serve {
namespace {

/// The self-pipe's write end, shared with every completion callback. The
/// fd lives behind a mutex so a late callback (job completing after the
/// server stopped) can never write to a closed-and-reused descriptor.
struct Wake {
  common::Mutex mutex;
  int fd EASCHED_GUARDED_BY(mutex) = -1;

  void poke() EASCHED_EXCLUDES(mutex) {
    common::MutexLock lock(mutex);
    if (fd < 0) return;
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup; the byte's loss is
    // harmless, so the result is deliberately ignored.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }

  void close_fd() EASCHED_EXCLUDES(mutex) {
    common::MutexLock lock(mutex);
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

/// The half of a connection that worker-thread callbacks may touch:
/// encoded response frames ready to flush, and the closed latch that
/// makes late completions drop their response instead of queueing it.
struct ConnShared {
  common::Mutex mutex;
  std::vector<std::string> ready EASCHED_GUARDED_BY(mutex);
  bool closed EASCHED_GUARDED_BY(mutex) = false;
};

void deliver(const std::shared_ptr<ConnShared>& shared, const std::shared_ptr<Wake>& wake,
             std::string frame) {
  {
    common::MutexLock lock(shared->mutex);
    if (shared->closed) return;
    shared->ready.push_back(std::move(frame));
  }
  wake->poke();
}

/// Per-tenant admission state and counters. in_flight is the quota
/// population: incremented on admit (loop thread), decremented by the
/// job's completion callback (worker thread). The m_* handles mirror the
/// counters into the engine's metric registry (one scrape covers both
/// layers); all null when the engine runs with metrics off.
struct Tenant {
  std::atomic<std::uint64_t> in_flight{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> deadline_exceeded{0};
  obs::Counter* m_requests = nullptr;           ///< easched_serve_requests_total{tenant}
  obs::Counter* m_accepted = nullptr;           ///< easched_serve_accepted_total{tenant}
  obs::Counter* m_shed = nullptr;               ///< easched_serve_shed_total{tenant}
  obs::Counter* m_completed = nullptr;          ///< easched_serve_completed_total{tenant}
  obs::Counter* m_deadline_exceeded = nullptr;  ///< ..._deadline_exceeded_total{tenant}
  obs::Histogram* m_latency_ms = nullptr;       ///< easched_serve_latency_ms{tenant}
};

/// Daemon-wide counters, shared (not owned) with completion callbacks so
/// a server torn down before its last job completes stays safe.
struct StatsBlock {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> deadline_exceeded{0};
  std::atomic<std::uint64_t> protocol_errors{0};
};

/// Arrival-to-response latency of one admitted request, in ms.
double request_ms(std::chrono::steady_clock::time_point arrival) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   arrival)
      .count();
}

struct Conn {
  int fd = -1;
  FrameDecoder decoder;
  std::string outbox;  ///< bytes awaiting a writable socket (loop thread only)
  bool handshaken = false;
  bool close_after_flush = false;  ///< fatal condition: flush, then close
  std::string tenant_id;
  std::shared_ptr<Tenant> tenant;
  std::shared_ptr<ConnShared> shared = std::make_shared<ConnShared>();
};

common::Status errno_status(const std::string& what) {
  return common::Status::internal(what + ": " + std::strerror(errno));
}

common::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(O_NONBLOCK)");
  }
  return common::Status::ok();
}

/// A request's problem, rebuilt server-side. Exactly one pointer is set.
struct BuiltProblem {
  std::shared_ptr<const core::BiCritProblem> bicrit;
  std::shared_ptr<const core::TriCritProblem> tricrit;
};

/// Rebuilds the problem a ProblemSpec describes, with the mapping
/// recomputed by the same critical-path list scheduler the CLI uses.
/// `deadline` overrides the spec's (deadline sweeps anchor the problem at
/// the axis maximum, mirroring the CLI). Model constructors treat bad
/// parameters as precondition violations (logic_error); at this trust
/// boundary the peer's bytes are data, not preconditions, so those throws
/// degrade into kInvalidArgument responses.
common::Result<BuiltProblem> build_problem(const ProblemSpec& spec, double deadline) {
  auto dag = graph::from_text(spec.dag_text);
  if (!dag.is_ok()) return dag.status();
  if (spec.processors < 1) {
    return common::Status::invalid("ProblemSpec: processors must be >= 1");
  }
  if (!(deadline > 0.0)) {
    return common::Status::invalid("ProblemSpec: deadline must be > 0");
  }
  try {
    model::SpeedModel speeds = [&] {
      switch (spec.speed_kind) {
        case model::SpeedModelKind::kDiscrete:
          return model::SpeedModel::discrete(spec.levels);
        case model::SpeedModelKind::kVddHopping:
          return model::SpeedModel::vdd_hopping(spec.levels);
        case model::SpeedModelKind::kIncremental:
          return model::SpeedModel::incremental(spec.fmin, spec.fmax, spec.delta);
        case model::SpeedModelKind::kContinuous:
        default:
          return model::SpeedModel::continuous(spec.fmin, spec.fmax);
      }
    }();
    const auto mapping = sched::list_schedule(dag.value(), spec.processors,
                                              sched::PriorityPolicy::kCriticalPath);
    BuiltProblem built;
    if (spec.tricrit) {
      model::ReliabilityModel rel(spec.lambda0, spec.dexp, speeds.fmin(), speeds.fmax(),
                                  spec.frel);
      built.tricrit = std::make_shared<const core::TriCritProblem>(
          std::move(dag).take(), mapping, speeds, rel, deadline);
    } else {
      built.bicrit = std::make_shared<const core::BiCritProblem>(std::move(dag).take(),
                                                                 mapping, speeds, deadline);
    }
    return built;
  } catch (const std::exception& e) {
    return common::Status::invalid(std::string("ProblemSpec rejected: ") + e.what());
  }
}

}  // namespace

struct Server::Impl {
  engine::Engine* engine = nullptr;
  ServerConfig config;
  int listen_fd = -1;
  int wake_read_fd = -1;
  std::shared_ptr<Wake> wake = std::make_shared<Wake>();
  std::shared_ptr<StatsBlock> stats = std::make_shared<StatsBlock>();
  std::atomic<bool> stopping{false};
  std::thread thread;
  common::Status loop_status = common::Status::ok();
  int bound_port = 0;
  std::vector<std::unique_ptr<Conn>> conns;  ///< loop thread only
  /// Tenant states outlive their connections (counters persist across
  /// reconnects); only the loop thread touches the map itself.
  std::map<std::string, std::shared_ptr<Tenant>> tenants;

  ~Impl() { shutdown(); }

  std::shared_ptr<Tenant> tenant_for(const std::string& id) {
    auto& slot = tenants[id];
    if (!slot) {
      slot = std::make_shared<Tenant>();
      if (obs::Registry* reg = engine->metrics()) {
        const obs::LabelSet by_tenant{{"tenant", id}};
        slot->m_requests = reg->counter("easched_serve_requests_total", by_tenant);
        slot->m_accepted = reg->counter("easched_serve_accepted_total", by_tenant);
        slot->m_shed = reg->counter("easched_serve_shed_total", by_tenant);
        slot->m_completed = reg->counter("easched_serve_completed_total", by_tenant);
        slot->m_deadline_exceeded =
            reg->counter("easched_serve_deadline_exceeded_total", by_tenant);
        slot->m_latency_ms = reg->histogram("easched_serve_latency_ms", by_tenant);
      }
    }
    return slot;
  }

  /// One well-formed post-handshake request from `conn`'s tenant.
  void count_request(Conn& conn) {
    stats->requests.fetch_add(1, std::memory_order_relaxed);
    if (conn.tenant->m_requests != nullptr) conn.tenant->m_requests->inc();
  }

  void enqueue(Conn& conn, MsgType type, const std::string& payload) {
    conn.outbox += encode_frame(type, payload);
  }

  void close_conn(Conn& conn) {
    {
      common::MutexLock lock(conn.shared->mutex);
      conn.shared->closed = true;
      conn.shared->ready.clear();
    }
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
  }

  void shutdown() {
    stopping.store(true, std::memory_order_relaxed);
    wake->poke();
    if (thread.joinable()) thread.join();
    for (auto& conn : conns) close_conn(*conn);
    conns.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    if (wake_read_fd >= 0) ::close(wake_read_fd);
    wake_read_fd = -1;
    wake->close_fd();
  }

  // ---- request handling (loop thread) -----------------------------------

  void handle_hello(Conn& conn, const std::string& payload) {
    auto decoded = Hello::decode(payload);
    if (!decoded.is_ok() || decoded.value().magic != kMagic) {
      // Not our protocol at all — no ack could be meaningful.
      stats->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn.close_after_flush = true;
      return;
    }
    const Hello& hello = decoded.value();
    HelloAck ack;
    if (hello.version != kProtocolVersion) {
      ack.status = common::Status::unsupported(
          "protocol version " + std::to_string(hello.version) + " not supported (daemon speaks " +
          std::to_string(kProtocolVersion) + ")");
      conn.close_after_flush = true;
    } else if (hello.tenant.empty()) {
      ack.status = common::Status::invalid("tenant id must be non-empty");
      conn.close_after_flush = true;
    } else {
      conn.handshaken = true;
      conn.tenant_id = hello.tenant;
      conn.tenant = tenant_for(hello.tenant);
      stats->connections.fetch_add(1, std::memory_order_relaxed);
    }
    enqueue(conn, MsgType::kHelloAck, ack.encode());
  }

  /// Quota gate shared by solve and sweep admission. True = admitted
  /// (in_flight already counted); false = a shed response was queued.
  bool admit(Conn& conn, std::uint64_t request_id, bool is_sweep) {
    const std::size_t quota = config.tenant_quota;
    if (quota > 0 &&
        conn.tenant->in_flight.load(std::memory_order_relaxed) >= quota) {
      conn.tenant->shed.fetch_add(1, std::memory_order_relaxed);
      stats->shed.fetch_add(1, std::memory_order_relaxed);
      if (conn.tenant->m_shed != nullptr) conn.tenant->m_shed->inc();
      const common::Status status = common::Status::overloaded(
          "tenant '" + conn.tenant_id + "' is at its in-flight quota (" +
          std::to_string(quota) + ")");
      if (is_sweep) {
        SweepResponse resp;
        resp.request_id = request_id;
        resp.status = status;
        enqueue(conn, MsgType::kSweepResponse, resp.encode());
      } else {
        SolveResponse resp;
        resp.request_id = request_id;
        resp.status = status;
        enqueue(conn, MsgType::kSolveResponse, resp.encode());
      }
      return false;
    }
    conn.tenant->in_flight.fetch_add(1, std::memory_order_relaxed);
    conn.tenant->accepted.fetch_add(1, std::memory_order_relaxed);
    stats->accepted.fetch_add(1, std::memory_order_relaxed);
    if (conn.tenant->m_accepted != nullptr) conn.tenant->m_accepted->inc();
    return true;
  }

  /// Shared completion accounting for solve and sweep callbacks: quota
  /// release, shed-vs-completed counters, the deadline-expiry counter and
  /// the per-tenant latency histogram. Runs on the completing worker.
  static void account_completion(const std::shared_ptr<Tenant>& tn,
                                 const std::shared_ptr<StatsBlock>& st,
                                 common::StatusCode code,
                                 std::chrono::steady_clock::time_point arrival) {
    tn->in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (code == common::StatusCode::kOverloaded) {
      // The engine's global queue cap shed it after tenant admission.
      tn->shed.fetch_add(1, std::memory_order_relaxed);
      st->shed.fetch_add(1, std::memory_order_relaxed);
      if (tn->m_shed != nullptr) tn->m_shed->inc();
      return;
    }
    tn->completed.fetch_add(1, std::memory_order_relaxed);
    st->completed.fetch_add(1, std::memory_order_relaxed);
    if (tn->m_completed != nullptr) tn->m_completed->inc();
    if (code == common::StatusCode::kDeadlineExceeded) {
      tn->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      st->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      if (tn->m_deadline_exceeded != nullptr) tn->m_deadline_exceeded->inc();
    }
    if (tn->m_latency_ms != nullptr) tn->m_latency_ms->observe(request_ms(arrival));
  }

  engine::SubmitOptions submit_options(double job_deadline_ms) const {
    engine::SubmitOptions opts;
    opts.deadline_ms =
        job_deadline_ms > 0.0 ? job_deadline_ms : config.default_job_deadline_ms;
    return opts;
  }

  void handle_solve(Conn& conn, const std::string& payload) {
    auto decoded = SolveRequest::decode(payload);
    if (!decoded.is_ok()) {
      protocol_error(conn, decoded.status());
      return;
    }
    const SolveRequest& msg = decoded.value();
    count_request(conn);
    auto built = build_problem(msg.problem, msg.problem.deadline);
    if (!built.is_ok()) {
      SolveResponse resp;
      resp.request_id = msg.request_id;
      resp.status = built.status();
      enqueue(conn, MsgType::kSolveResponse, resp.encode());
      return;
    }
    if (!admit(conn, msg.request_id, /*is_sweep=*/false)) return;
    // Arrival is read only when the latency series exists, so metrics-off
    // daemons skip even the clock call.
    const auto arrival = conn.tenant->m_latency_ms != nullptr
                             ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};

    api::SolveOptions options;
    options.cache_namespace = conn.tenant_id;
    engine::SolveQuery query =
        built.value().bicrit
            ? engine::SolveQuery(built.value().bicrit, msg.solver, options)
            : engine::SolveQuery(built.value().tricrit, msg.solver, options);
    auto handle = engine->submit(std::move(query), submit_options(msg.job_deadline_ms));

    // The callback runs on the worker that completes the job (or inline
    // if it already finished). It owns copies of every shared piece, so
    // it outlives both this connection and the Server.
    const auto shared = conn.shared;
    const auto wk = wake;
    const auto tn = conn.tenant;
    const auto st = stats;
    const std::uint64_t id = msg.request_id;
    handle.on_complete([shared, wk, tn, st, handle, id, arrival] {
      const common::Result<api::SolveReport>& result = handle.get();
      SolveResponse resp;
      resp.request_id = id;
      if (result.is_ok()) {
        const api::SolveReport& report = result.value();
        resp.energy = report.energy;
        resp.makespan = report.makespan;
        resp.wall_ms = report.wall_ms;
        resp.solver = report.solver;
        resp.exact = report.exact;
        resp.iterations = report.iterations;
        resp.re_executed = report.re_executed;
      } else {
        resp.status = result.status();
      }
      account_completion(tn, st,
                         result.is_ok() ? common::StatusCode::kOk
                                        : result.status().code(),
                         arrival);
      deliver(shared, wk, encode_frame(MsgType::kSolveResponse, resp.encode()));
    });
  }

  void handle_sweep(Conn& conn, const std::string& payload) {
    auto decoded = SweepRequest::decode(payload);
    if (!decoded.is_ok()) {
      protocol_error(conn, decoded.status());
      return;
    }
    const SweepRequest& msg = decoded.value();
    count_request(conn);

    auto reject = [&](common::Status status) {
      SweepResponse resp;
      resp.request_id = msg.request_id;
      resp.axis = msg.axis;
      resp.status = std::move(status);
      enqueue(conn, MsgType::kSweepResponse, resp.encode());
    };

    if (msg.initial_points < 1 || msg.max_points < msg.initial_points) {
      reject(common::Status::invalid(
          "SweepRequest: need 1 <= initial_points <= max_points"));
      return;
    }
    if (!(msg.lo > 0.0) || !(msg.lo <= msg.hi)) {
      reject(common::Status::invalid("SweepRequest: need 0 < lo <= hi"));
      return;
    }
    const bool reliability = msg.axis == WireAxis::kReliability;
    if (reliability && !msg.problem.tricrit) {
      reject(common::Status::invalid(
          "SweepRequest: reliability sweeps need a TRI-CRIT problem"));
      return;
    }
    // Deadline sweeps anchor the problem at the axis maximum; reliability
    // sweeps keep the spec's fixed deadline and push the axis maximum
    // into the reliability threshold — both mirror the CLI exactly.
    ProblemSpec spec = msg.problem;
    double anchor = spec.deadline;
    if (reliability) {
      spec.frel = msg.hi;
    } else {
      anchor = msg.hi;
    }
    auto built = build_problem(spec, anchor);
    if (!built.is_ok()) {
      reject(built.status());
      return;
    }
    if (!admit(conn, msg.request_id, /*is_sweep=*/true)) return;
    const auto arrival = conn.tenant->m_latency_ms != nullptr
                             ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};

    frontier::FrontierOptions fopt;
    fopt.initial_points = msg.initial_points;
    fopt.max_points = msg.max_points;
    fopt.solver = msg.solver;
    fopt.solve.cache_namespace = conn.tenant_id;

    engine::FrontierQuery query =
        reliability
            ? engine::FrontierQuery::reliability(built.value().tricrit, msg.lo, msg.hi,
                                                 fopt)
            : (built.value().bicrit
                   ? engine::FrontierQuery::deadline(built.value().bicrit, msg.lo,
                                                     msg.hi, fopt)
                   : engine::FrontierQuery::deadline(built.value().tricrit, msg.lo,
                                                     msg.hi, fopt));

    engine::Engine::FrontierHandle handle;
    if (!msg.prev_probes.empty()) {
      engine::ResweepQuery resweep;
      resweep.prev.axis = reliability ? frontier::ConstraintAxis::kReliability
                                      : frontier::ConstraintAxis::kDeadline;
      resweep.prev.probes = msg.prev_probes;
      resweep.target = std::move(query);
      handle = engine->submit(std::move(resweep), submit_options(msg.job_deadline_ms));
    } else {
      handle = engine->submit(std::move(query), submit_options(msg.job_deadline_ms));
    }

    const auto shared = conn.shared;
    const auto wk = wake;
    const auto tn = conn.tenant;
    const auto st = stats;
    const std::uint64_t id = msg.request_id;
    handle.on_complete([shared, wk, tn, st, handle, id, arrival] {
      const frontier::FrontierResult& result = handle.get();
      SweepResponse resp;
      resp.request_id = id;
      resp.status = result.error;
      resp.axis = result.axis == frontier::ConstraintAxis::kReliability
                      ? WireAxis::kReliability
                      : WireAxis::kDeadline;
      resp.points.reserve(result.points.size());
      for (const auto& p : result.points) {
        resp.points.push_back(WirePoint{p.constraint, p.energy, p.makespan, p.solver,
                                        p.exact});
      }
      resp.probes = result.probes;
      resp.evaluated = result.evaluated;
      resp.infeasible = result.infeasible;
      resp.cache_hits = result.cache_hits;
      resp.prefetched = result.prefetched;
      resp.wall_ms = result.wall_ms;
      account_completion(tn, st, result.error.code(), arrival);
      deliver(shared, wk, encode_frame(MsgType::kSweepResponse, resp.encode()));
    });
  }

  void handle_stat(Conn& conn, const std::string& payload) {
    auto decoded = StatRequest::decode(payload);
    if (!decoded.is_ok()) {
      protocol_error(conn, decoded.status());
      return;
    }
    count_request(conn);
    StatResponse resp;
    resp.request_id = decoded.value().request_id;
    resp.threads = engine->threads();
    resp.queued_jobs = engine->queued_jobs();
    const auto cache = engine->cache_stats();
    resp.cache_entries = cache.entries;
    resp.cache_hits = cache.hits;
    resp.cache_misses = cache.misses;
    resp.store_hits = cache.store_hits;
    if (engine->store() != nullptr) {
      resp.has_store = true;
      const auto store_stats = engine->store()->stats();
      resp.store_entries = store_stats.entries;
      resp.store_blobs = store_stats.blobs;
      resp.store_bytes = store_stats.file_bytes;
    }
    resp.tenant_accepted = conn.tenant->accepted.load(std::memory_order_relaxed);
    resp.tenant_shed = conn.tenant->shed.load(std::memory_order_relaxed);
    resp.tenant_completed = conn.tenant->completed.load(std::memory_order_relaxed);
    resp.tenant_in_flight = conn.tenant->in_flight.load(std::memory_order_relaxed);
    resp.tenant_deadline_exceeded =
        conn.tenant->deadline_exceeded.load(std::memory_order_relaxed);
    enqueue(conn, MsgType::kStatResponse, resp.encode());
  }

  /// Scrapes the engine's whole registry synchronously on the loop
  /// thread — an export is gauge sampling plus serialization, far below
  /// a solve, and scrapes are rare (monitoring cadence).
  void handle_metrics(Conn& conn, const std::string& payload) {
    auto decoded = MetricsRequest::decode(payload);
    if (!decoded.is_ok()) {
      protocol_error(conn, decoded.status());
      return;
    }
    count_request(conn);
    MetricsResponse resp;
    resp.request_id = decoded.value().request_id;
    resp.format = decoded.value().format;
    if (engine->metrics() == nullptr) {
      resp.status = common::Status::unsupported("metrics are disabled on this daemon");
    } else {
      std::ostringstream body;
      if (resp.format == MetricsFormat::kJson) {
        engine->write_metrics_json(body);
      } else {
        engine->write_metrics_text(body);
      }
      resp.body = std::move(body).str();
    }
    enqueue(conn, MsgType::kMetricsResponse, resp.encode());
  }

  void protocol_error(Conn& conn, common::Status status) {
    stats->protocol_errors.fetch_add(1, std::memory_order_relaxed);
    ErrorResponse resp;
    resp.status = std::move(status);
    enqueue(conn, MsgType::kError, resp.encode());
  }

  void process_frame(Conn& conn, const Frame& frame) {
    if (!conn.handshaken) {
      if (frame.type != MsgType::kHello) {
        protocol_error(conn, common::Status::invalid(
                                 "connection must open with a Hello handshake"));
        conn.close_after_flush = true;
        return;
      }
      handle_hello(conn, frame.payload);
      return;
    }
    switch (frame.type) {
      case MsgType::kSolveRequest: handle_solve(conn, frame.payload); break;
      case MsgType::kSweepRequest: handle_sweep(conn, frame.payload); break;
      case MsgType::kStatRequest: handle_stat(conn, frame.payload); break;
      case MsgType::kMetricsRequest: handle_metrics(conn, frame.payload); break;
      default:
        protocol_error(
            conn, common::Status::unsupported(
                      "unexpected message type " +
                      std::to_string(static_cast<unsigned>(frame.type))));
        break;
    }
  }

  /// Reads and dispatches everything available. False = close the
  /// connection now (peer gone or stream unrecoverable).
  bool process_input(Conn& conn) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.decoder.feed(buf, static_cast<std::size_t>(n));
        Frame frame;
        for (;;) {
          const auto result = conn.decoder.next(frame);
          if (result == FrameDecoder::Result::kNeedMore) break;
          if (result == FrameDecoder::Result::kFrame) {
            process_frame(conn, frame);
          } else if (result == FrameDecoder::Result::kBadCrc) {
            // The frame was delimited, so the stream stays in sync: one
            // error response, connection lives on.
            protocol_error(conn,
                           common::Status::invalid("frame checksum mismatch"));
          } else {  // kOversized — the boundary itself is untrustworthy
            protocol_error(conn, common::Status::invalid(
                                     "frame exceeds the " +
                                     std::to_string(kMaxFrameBytes) +
                                     "-byte cap; closing"));
            conn.close_after_flush = true;
            return true;  // stop reading; flush the error, then close
          }
          if (conn.close_after_flush) return true;
        }
        continue;
      }
      if (n == 0) return false;  // orderly peer shutdown
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
  }

  /// Flushes as much of the outbox as the socket accepts. False = the
  /// connection is dead.
  bool flush_output(Conn& conn) {
    while (!conn.outbox.empty()) {
      const ssize_t n =
          ::send(conn.fd, conn.outbox.data(), conn.outbox.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.outbox.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    return true;
  }

  void accept_new() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure — poll again later
      }
      if (!set_nonblocking(fd).is_ok()) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conns.push_back(std::move(conn));
    }
  }

  common::Status loop() {
    while (!stopping.load(std::memory_order_relaxed)) {
      // Adopt worker-completed responses into the per-connection outboxes.
      for (auto& conn : conns) {
        std::vector<std::string> ready;
        {
          common::MutexLock lock(conn->shared->mutex);
          ready.swap(conn->shared->ready);
        }
        for (auto& frame : ready) conn->outbox += frame;
      }

      std::vector<pollfd> fds;
      fds.reserve(conns.size() + 2);
      fds.push_back(pollfd{listen_fd, POLLIN, 0});
      fds.push_back(pollfd{wake_read_fd, POLLIN, 0});
      for (auto& conn : conns) {
        short events = POLLIN;
        if (!conn->outbox.empty()) events |= POLLOUT;
        fds.push_back(pollfd{conn->fd, events, 0});
      }

      const int rc = ::poll(fds.data(), fds.size(), 500);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return errno_status("poll");
      }

      if ((fds[1].revents & POLLIN) != 0) {
        char drain[256];
        while (::read(wake_read_fd, drain, sizeof(drain)) > 0) {
        }
      }
      if ((fds[0].revents & POLLIN) != 0) accept_new();

      // Walk only the connections that were present when `fds` was built:
      // accept_new() above appends to `conns`, and those have no pollfd
      // this round (they get polled next iteration). `i` advances only on
      // survival so erases keep conns[i] aligned with fds[fd_idx].
      std::size_t i = 0;
      for (std::size_t fd_idx = 2; fd_idx < fds.size() && i < conns.size();
           ++fd_idx) {
        Conn& conn = *conns[i];
        const short revents = fds[fd_idx].revents;
        bool alive = true;
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (revents & POLLIN) == 0) {
          alive = false;
        }
        if (alive && (revents & POLLIN) != 0) alive = process_input(conn);
        if (alive) alive = flush_output(conn);
        if (alive && conn.close_after_flush && conn.outbox.empty()) alive = false;
        if (alive) {
          ++i;
        } else {
          close_conn(conn);
          conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
    }
    return common::Status::ok();
  }
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

Server::Server(Server&&) noexcept = default;

Server& Server::operator=(Server&& other) noexcept {
  if (this != &other) {
    if (impl_) impl_->shutdown();  // stop the displaced server's loop first
    impl_ = std::move(other.impl_);
  }
  return *this;
}

Server::~Server() {
  if (impl_) impl_->shutdown();
}

common::Result<Server> Server::create(engine::Engine* engine, ServerConfig config) {
  EASCHED_CHECK_MSG(engine != nullptr, "Server::create needs an engine");
  auto impl = std::make_unique<Impl>();
  impl->engine = engine;
  impl->config = config;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* resolved = nullptr;
  const std::string port_str = std::to_string(config.port);
  if (::getaddrinfo(config.host.c_str(), port_str.c_str(), &hints, &resolved) != 0 ||
      resolved == nullptr) {
    return common::Status::invalid("cannot resolve listen address " + config.host);
  }
  const int fd = ::socket(resolved->ai_family, resolved->ai_socktype, 0);
  if (fd < 0) {
    ::freeaddrinfo(resolved);
    return errno_status("socket");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const int bind_rc = ::bind(fd, resolved->ai_addr, resolved->ai_addrlen);
  ::freeaddrinfo(resolved);
  if (bind_rc < 0) {
    ::close(fd);
    return errno_status("bind " + config.host + ":" + port_str);
  }
  if (::listen(fd, config.backlog) < 0) {
    ::close(fd);
    return errno_status("listen");
  }
  if (auto status = set_nonblocking(fd); !status.is_ok()) {
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    return errno_status("getsockname");
  }
  impl->listen_fd = fd;
  impl->bound_port = static_cast<int>(ntohs(bound.sin_port));

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) < 0) return errno_status("pipe");
  if (auto status = set_nonblocking(pipe_fds[0]); !status.is_ok()) return status;
  if (auto status = set_nonblocking(pipe_fds[1]); !status.is_ok()) return status;
  impl->wake_read_fd = pipe_fds[0];
  {
    common::MutexLock lock(impl->wake->mutex);
    impl->wake->fd = pipe_fds[1];
  }
  return Server(std::move(impl));
}

int Server::port() const noexcept { return impl_->bound_port; }

common::Status Server::run() { return impl_->loop(); }

common::Status Server::start() {
  if (impl_->thread.joinable()) {
    return common::Status::invalid("Server::start(): already running");
  }
  Impl* impl = impl_.get();
  impl->thread = std::thread([impl] { impl->loop_status = impl->loop(); });
  return common::Status::ok();
}

void Server::stop() {
  if (impl_) impl_->shutdown();
}

void Server::request_stop() noexcept {
  if (impl_) impl_->stopping.store(true, std::memory_order_relaxed);
}

ServerStats Server::stats() const {
  ServerStats out;
  const StatsBlock& s = *impl_->stats;
  out.connections = s.connections.load(std::memory_order_relaxed);
  out.requests = s.requests.load(std::memory_order_relaxed);
  out.accepted = s.accepted.load(std::memory_order_relaxed);
  out.shed = s.shed.load(std::memory_order_relaxed);
  out.completed = s.completed.load(std::memory_order_relaxed);
  out.deadline_exceeded = s.deadline_exceeded.load(std::memory_order_relaxed);
  out.protocol_errors = s.protocol_errors.load(std::memory_order_relaxed);
  return out;
}

}  // namespace easched::serve
