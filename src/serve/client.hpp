#pragma once
// serve::Client — the library side of the serve protocol, used by the
// CLI's `remote` subcommand and by the load bench.
//
// A Client owns one TCP connection to a daemon, performs the version
// handshake on connect (so a constructed Client is always usable), and
// speaks the request/response vocabulary of serve/protocol.hpp. Requests
// pipeline: send_*() only writes the frame and returns, wait_*() blocks
// until the response with the matching request_id arrives (buffering any
// other responses that land first), and poll() lets an open-loop load
// generator drain responses without blocking. The client assigns
// request ids itself (next_request_id()) or accepts caller-chosen ones —
// ids only need to be unique among this connection's in-flight requests.
//
// Thread model: one Client, one thread. Concurrency comes from
// pipelining on the single connection (the daemon runs the jobs on its
// engine pool), not from sharing the Client.

#include <cstdint>
#include <map>
#include <string>

#include "common/status.hpp"
#include "serve/protocol.hpp"

namespace easched::serve {

class Client {
 public:
  /// Connects to `host:port` and completes the Hello/HelloAck handshake
  /// as `tenant`. A daemon that refuses (version mismatch, empty tenant)
  /// surfaces its HelloAck status here.
  static common::Result<Client> connect(const std::string& host, int port,
                                        const std::string& tenant);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  const std::string& tenant() const noexcept { return tenant_; }

  /// Monotonic per-connection request id (1-based).
  std::uint64_t next_request_id() noexcept { return ++last_request_id_; }

  // ---- pipelined sends --------------------------------------------------

  common::Status send(const SolveRequest& request);
  common::Status send(const SweepRequest& request);
  common::Status send(const StatRequest& request);
  common::Status send(const MetricsRequest& request);

  // ---- blocking joins ---------------------------------------------------

  /// Blocks until the response for `request_id` arrives. A protocol-level
  /// ErrorResponse for this id (or for the connection) comes back as its
  /// Status; a dead connection as kInternal.
  common::Result<SolveResponse> wait_solve(std::uint64_t request_id);
  common::Result<SweepResponse> wait_sweep(std::uint64_t request_id);
  common::Result<StatResponse> wait_stat(std::uint64_t request_id);
  common::Result<MetricsResponse> wait_metrics(std::uint64_t request_id);

  /// send + wait conveniences.
  common::Result<SolveResponse> solve(SolveRequest request);
  common::Result<SweepResponse> sweep(SweepRequest request);
  common::Result<StatResponse> stat();
  /// One scrape of the daemon's metric registry. A non-OK response status
  /// (metrics disabled on the daemon) surfaces as this Result's status.
  common::Result<MetricsResponse> metrics(MetricsFormat format = MetricsFormat::kText);

  // ---- non-blocking drain (load generators) -----------------------------

  /// Reads whatever is available within `timeout_ms` (0 = just drain what
  /// already arrived) and buffers decoded responses. Returns non-OK only
  /// when the connection died.
  common::Status poll(int timeout_ms);

  /// Removes a buffered response by id; false when it has not arrived.
  bool take_solve(std::uint64_t request_id, SolveResponse* out);
  bool take_sweep(std::uint64_t request_id, SweepResponse* out);

 private:
  Client() = default;

  common::Status send_frame(MsgType type, const std::string& payload);
  /// Blocks on recv once and feeds the bytes to the decoder without
  /// dispatching frames — the handshake reads the HelloAck through this.
  common::Status recv_into_decoder();
  /// Reads once (blocking up to timeout_ms; -1 = indefinitely) and
  /// decodes every complete frame into the response buffers.
  common::Status pump(int timeout_ms);
  /// Non-OK when an ErrorResponse arrived for `request_id` (consumed) or
  /// the connection is in a failed state.
  common::Status check_error(std::uint64_t request_id);

  int fd_ = -1;
  std::string tenant_;
  std::uint64_t last_request_id_ = 0;
  FrameDecoder decoder_;
  std::map<std::uint64_t, SolveResponse> solves_;
  std::map<std::uint64_t, SweepResponse> sweeps_;
  std::map<std::uint64_t, StatResponse> stats_;
  std::map<std::uint64_t, MetricsResponse> metrics_;
  std::map<std::uint64_t, common::Status> errors_;  ///< keyed ErrorResponses
  common::Status connection_error_ = common::Status::ok();  ///< sticky fatal state
};

}  // namespace easched::serve
