#pragma once
// Byte-level encode/decode helpers shared by the serve protocol codec.
//
// Everything on the wire is explicit little-endian — the same convention
// the store's record payloads use (store/serialize.cpp) — so a daemon and
// a client on different hosts agree byte for byte. Writers append to a
// std::string; the Reader walks a payload with bounds checks and reports
// truncation as a flag instead of throwing, so a corrupt payload degrades
// into a clean decode error, never UB.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace easched::serve::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Length-prefixed (u32) byte string. The frame-level size cap bounds the
/// total, so u32 lengths are never the limiting factor.
inline void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

inline void put_doubles(std::string& out, const std::vector<double>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (double d : v) put_double(out, d);
}

/// Bounds-checked sequential reader over a payload. Every get_* returns a
/// zero value once the payload ran out and latches `ok()` false — callers
/// decode the whole struct unconditionally and check ok() once at the end.
class Reader {
 public:
  explicit Reader(const std::string& payload) : data_(payload) {}

  bool ok() const noexcept { return ok_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  std::uint8_t get_u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t get_u16() { return static_cast<std::uint16_t>(get_le(2)); }
  std::uint32_t get_u32() { return static_cast<std::uint32_t>(get_le(4)); }
  std::uint64_t get_u64() { return get_le(8); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_le(8)); }

  double get_double() {
    const std::uint64_t bits = get_le(8);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string get_string() {
    const std::uint32_t n = get_u32();
    if (!need(n)) return {};
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  std::vector<double> get_doubles() {
    const std::uint32_t n = get_u32();
    // 8 bytes per element: reject counts the remaining payload cannot hold
    // before reserving (a corrupt count must not trigger a huge allocation).
    if (!need(static_cast<std::size_t>(n) * 8)) return {};
    std::vector<double> v;
    v.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) v.push_back(get_double());
    return v;
  }

 private:
  bool need(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::uint64_t get_le(int bytes) {
    if (!need(static_cast<std::size_t>(bytes))) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++])) << (8 * i);
    }
    return v;
  }

  const std::string& data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace easched::serve::wire
