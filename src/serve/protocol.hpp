#pragma once
// serve::Protocol — the length-prefixed binary protocol of the easched
// scheduling daemon.
//
// Framing reuses the store log's discipline (store/log.hpp): every frame
// is self-delimiting and self-checking,
//
//   [type u8][payload_len u64 LE][payload bytes][crc32 u32 LE]
//
// with the CRC (store::crc32, IEEE 802.3) covering type + length +
// payload. The consequences mirror the log's: a frame whose CRC fails is
// rejected *without* losing the stream position (the length already
// delimited it), so one corrupt frame costs one error response, not the
// connection; only a length that exceeds kMaxFrameBytes is unrecoverable
// — the decoder cannot trust the boundary — and closes the connection.
//
// A connection opens with a version handshake: the client sends kHello
// (magic + protocol version + tenant id), the server answers kHelloAck
// (its version + accept/reject status). After an accepted handshake the
// client pipelines requests freely; every request carries a client-chosen
// request_id that the matching response echoes, so responses may arrive
// in any order (jobs run concurrently on the daemon's engine).
//
// Problems travel as ProblemSpec: the DAG in the graph/io.hpp text
// format plus the platform scalars. The daemon rebuilds the mapping with
// the same critical-path list scheduler the CLI uses, so a remote solve
// answers exactly what a local `easched_cli <dag> --deadline D` would.
//
// Every message struct encodes to a payload string and decodes behind a
// Result — a malformed payload is an expected failure (kInvalidArgument),
// never UB or an exception (wire.hpp's Reader bounds-checks every read).

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "model/speed_model.hpp"

namespace easched::serve {

/// "EAS1" little-endian: identifies an easched serve connection byte 0.
constexpr std::uint32_t kMagic = 0x31534145u;
constexpr std::uint16_t kProtocolVersion = 1;
/// Hard cap on one frame's payload. A decoded length beyond it means the
/// stream is garbage (or hostile) — the connection closes, because the
/// claimed boundary cannot be trusted for resynchronisation.
constexpr std::uint64_t kMaxFrameBytes = 8ull << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,          ///< client -> server: magic, version, tenant
  kHelloAck = 2,       ///< server -> client: version, accept/reject
  kSolveRequest = 3,   ///< one problem, one report
  kSweepRequest = 4,   ///< Pareto sweep (plain or resweep-warm-started)
  kStatRequest = 5,    ///< daemon / cache / store / tenant statistics
  kSolveResponse = 6,
  kSweepResponse = 7,
  kStatResponse = 8,
  kError = 9,          ///< protocol-level failure (bad frame, bad payload)
  kMetricsRequest = 10,   ///< scrape the daemon's metric registry
  kMetricsResponse = 11,  ///< text exposition or JSON document
};

// ---- framing ------------------------------------------------------------

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Encodes `payload` as a complete frame of `type` (header + CRC).
std::string encode_frame(MsgType type, const std::string& payload);

/// Incremental frame decoder over a TCP byte stream. feed() appends raw
/// bytes; next() extracts frames until kNeedMore. kBadCrc delivers no
/// frame but *consumes* the corrupt frame (its length field delimited
/// it), so the caller can report the error and keep decoding; kOversized
/// is terminal for the stream.
class FrameDecoder {
 public:
  enum class Result {
    kNeedMore,   ///< no complete frame buffered yet
    kFrame,      ///< `out` holds the next frame
    kBadCrc,     ///< a delimited frame failed its checksum (recoverable)
    kOversized,  ///< declared payload exceeds kMaxFrameBytes (fatal)
  };

  void feed(const char* data, std::size_t n);
  Result next(Frame& out);

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
};

// ---- wire status --------------------------------------------------------

/// Statuses cross the wire as (code u8, message). Decoding validates the
/// code byte and maps anything out of range to kInternal rather than
/// trusting the peer.
void encode_status(std::string& out, const common::Status& status);

// ---- handshake ----------------------------------------------------------

struct Hello {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::string tenant;  ///< non-empty; the daemon's isolation unit

  std::string encode() const;
  static common::Result<Hello> decode(const std::string& payload);
};

struct HelloAck {
  std::uint16_t version = kProtocolVersion;
  common::Status status = common::Status::ok();  ///< non-OK: connection refused

  std::string encode() const;
  static common::Result<HelloAck> decode(const std::string& payload);
};

// ---- problems -----------------------------------------------------------

/// A self-contained problem instance: everything the daemon needs to
/// rebuild the BiCrit/TriCrit problem the client means. The mapping is
/// deliberately *not* wire data — the daemon recomputes it with the
/// critical-path list scheduler, matching the CLI's local behaviour.
struct ProblemSpec {
  std::string dag_text;  ///< graph/io.hpp text format
  std::int32_t processors = 2;
  model::SpeedModelKind speed_kind = model::SpeedModelKind::kContinuous;
  double fmin = 0.2;
  double fmax = 1.0;
  double delta = 0.0;          ///< INCREMENTAL step
  std::vector<double> levels;  ///< DISCRETE / VDD-HOPPING level set
  double deadline = 0.0;
  bool tricrit = false;
  double lambda0 = 1e-5;  ///< TRI-CRIT reliability statics
  double dexp = 3.0;
  double frel = 0.0;

  void encode(std::string& out) const;
};

struct SolveRequest {
  std::uint64_t request_id = 0;
  ProblemSpec problem;
  std::string solver;           ///< registry name; empty = auto-select
  double job_deadline_ms = 0.0; ///< > 0: per-job wall-clock deadline

  std::string encode() const;
  static common::Result<SolveRequest> decode(const std::string& payload);
};

/// Sweep axis on the wire (mirrors frontier::ConstraintAxis).
enum class WireAxis : std::uint8_t { kDeadline = 0, kReliability = 1 };

struct SweepRequest {
  std::uint64_t request_id = 0;
  ProblemSpec problem;
  WireAxis axis = WireAxis::kDeadline;
  double lo = 0.0;  ///< dmin or rmin
  double hi = 0.0;  ///< dmax or rmax
  std::int32_t initial_points = 9;
  std::int32_t max_points = 33;
  std::string solver;
  double job_deadline_ms = 0.0;
  /// Non-empty: resweep, warm-started from a previous sweep's probe trace
  /// (SweepResponse::probes) — the incremental-update path over the wire.
  std::vector<double> prev_probes;

  std::string encode() const;
  static common::Result<SweepRequest> decode(const std::string& payload);
};

struct StatRequest {
  std::uint64_t request_id = 0;

  std::string encode() const;
  static common::Result<StatRequest> decode(const std::string& payload);
};

/// Exposition format of a metrics scrape.
enum class MetricsFormat : std::uint8_t { kText = 0, kJson = 1 };

/// Scrapes the daemon's whole metric registry (engine + cache + store +
/// per-tenant serve counters) in one round trip — the wire equivalent of
/// a Prometheus /metrics pull.
struct MetricsRequest {
  std::uint64_t request_id = 0;
  MetricsFormat format = MetricsFormat::kText;

  std::string encode() const;
  static common::Result<MetricsRequest> decode(const std::string& payload);
};

// ---- responses ----------------------------------------------------------

struct SolveResponse {
  std::uint64_t request_id = 0;
  common::Status status = common::Status::ok();  ///< kOverloaded = shed
  double energy = 0.0;
  double makespan = 0.0;
  double wall_ms = 0.0;
  std::string solver;
  bool exact = false;
  std::int64_t iterations = 0;
  std::int32_t re_executed = 0;

  std::string encode() const;
  static common::Result<SolveResponse> decode(const std::string& payload);
};

struct WirePoint {
  double constraint = 0.0;
  double energy = 0.0;
  double makespan = 0.0;
  std::string solver;
  bool exact = false;
};

struct SweepResponse {
  std::uint64_t request_id = 0;
  common::Status status = common::Status::ok();
  WireAxis axis = WireAxis::kDeadline;
  std::vector<WirePoint> points;       ///< the Pareto frontier, ascending
  std::vector<double> probes;          ///< feed a later resweep's prev_probes
  std::uint64_t evaluated = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t prefetched = 0;
  double wall_ms = 0.0;

  std::string encode() const;
  static common::Result<SweepResponse> decode(const std::string& payload);
};

struct StatResponse {
  std::uint64_t request_id = 0;
  std::uint64_t threads = 0;
  std::uint64_t queued_jobs = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t store_hits = 0;
  bool has_store = false;
  std::uint64_t store_entries = 0;
  std::uint64_t store_blobs = 0;
  std::uint64_t store_bytes = 0;
  /// The requesting tenant's counters on this daemon.
  std::uint64_t tenant_accepted = 0;
  std::uint64_t tenant_shed = 0;
  std::uint64_t tenant_completed = 0;
  std::uint64_t tenant_in_flight = 0;
  std::uint64_t tenant_deadline_exceeded = 0;

  std::string encode() const;
  static common::Result<StatResponse> decode(const std::string& payload);
};

/// The scrape body. `body` is the registry's text exposition or JSON
/// document, verbatim — the daemon serializes once, clients (and curl-
/// style tooling behind them) parse or print as-is.
struct MetricsResponse {
  std::uint64_t request_id = 0;
  common::Status status = common::Status::ok();
  MetricsFormat format = MetricsFormat::kText;
  std::string body;

  std::string encode() const;
  static common::Result<MetricsResponse> decode(const std::string& payload);
};

/// Protocol-level failure: an unknown message type, an undecodable
/// payload, or a CRC-failed frame. request_id is 0 when the failure
/// happened before an id could be read.
struct ErrorResponse {
  std::uint64_t request_id = 0;
  common::Status status = common::Status::ok();

  std::string encode() const;
  static common::Result<ErrorResponse> decode(const std::string& payload);
};

}  // namespace easched::serve
