#include "serve/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace easched::serve {
namespace {

common::Status errno_status(const std::string& what) {
  return common::Status::internal(what + ": " + std::strerror(errno));
}

}  // namespace

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      tenant_(std::move(other.tenant_)),
      last_request_id_(other.last_request_id_),
      decoder_(std::move(other.decoder_)),
      solves_(std::move(other.solves_)),
      sweeps_(std::move(other.sweeps_)),
      stats_(std::move(other.stats_)),
      metrics_(std::move(other.metrics_)),
      errors_(std::move(other.errors_)),
      connection_error_(std::move(other.connection_error_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
    tenant_ = std::move(other.tenant_);
    last_request_id_ = other.last_request_id_;
    decoder_ = std::move(other.decoder_);
    solves_ = std::move(other.solves_);
    sweeps_ = std::move(other.sweeps_);
    stats_ = std::move(other.stats_);
    metrics_ = std::move(other.metrics_);
    errors_ = std::move(other.errors_);
    connection_error_ = std::move(other.connection_error_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

common::Result<Client> Client::connect(const std::string& host, int port,
                                       const std::string& tenant) {
  if (tenant.empty()) return common::Status::invalid("tenant id must be non-empty");

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &resolved) != 0 ||
      resolved == nullptr) {
    return common::Status::invalid("cannot resolve " + host);
  }
  const int fd = ::socket(resolved->ai_family, resolved->ai_socktype, 0);
  if (fd < 0) {
    ::freeaddrinfo(resolved);
    return errno_status("socket");
  }
  const int rc = ::connect(fd, resolved->ai_addr, resolved->ai_addrlen);
  ::freeaddrinfo(resolved);
  if (rc < 0) {
    ::close(fd);
    return errno_status("connect " + host + ":" + port_str);
  }

  Client client;
  client.fd_ = fd;
  client.tenant_ = tenant;

  Hello hello;
  hello.tenant = tenant;
  if (auto status = client.send_frame(MsgType::kHello, hello.encode());
      !status.is_ok()) {
    return status;
  }
  // The ack is the very first frame the daemon sends; block for it.
  for (;;) {
    Frame frame;
    const auto result = client.decoder_.next(frame);
    if (result == FrameDecoder::Result::kFrame) {
      if (frame.type != MsgType::kHelloAck) {
        return common::Status::internal("daemon answered the handshake with type " +
                                        std::to_string(static_cast<unsigned>(frame.type)));
      }
      auto ack = HelloAck::decode(frame.payload);
      if (!ack.is_ok()) return ack.status();
      if (!ack.value().status.is_ok()) return ack.value().status;
      if (ack.value().version != kProtocolVersion) {
        return common::Status::unsupported(
            "daemon speaks protocol version " + std::to_string(ack.value().version) +
            ", this client speaks " + std::to_string(kProtocolVersion));
      }
      return client;
    }
    if (result != FrameDecoder::Result::kNeedMore) {
      return common::Status::internal("corrupt handshake frame from daemon");
    }
    if (auto status = client.recv_into_decoder(); !status.is_ok()) return status;
  }
}

common::Status Client::recv_into_decoder() {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      return common::Status::ok();
    }
    if (n == 0) {
      connection_error_ = common::Status::internal("daemon closed the connection");
      return connection_error_;
    }
    if (errno == EINTR) continue;
    connection_error_ = errno_status("recv");
    return connection_error_;
  }
}

common::Status Client::send_frame(MsgType type, const std::string& payload) {
  if (!connection_error_.is_ok()) return connection_error_;
  const std::string frame = encode_frame(type, payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    connection_error_ = errno_status("send");
    return connection_error_;
  }
  return common::Status::ok();
}

common::Status Client::send(const SolveRequest& request) {
  return send_frame(MsgType::kSolveRequest, request.encode());
}

common::Status Client::send(const SweepRequest& request) {
  return send_frame(MsgType::kSweepRequest, request.encode());
}

common::Status Client::send(const StatRequest& request) {
  return send_frame(MsgType::kStatRequest, request.encode());
}

common::Status Client::send(const MetricsRequest& request) {
  return send_frame(MsgType::kMetricsRequest, request.encode());
}

common::Status Client::pump(int timeout_ms) {
  if (!connection_error_.is_ok()) return connection_error_;

  if (timeout_ms >= 0) {
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno != EINTR) {
      connection_error_ = errno_status("poll");
      return connection_error_;
    }
    if (rc <= 0) return common::Status::ok();  // nothing arrived in time
  }

  if (auto status = recv_into_decoder(); !status.is_ok()) return status;

  Frame frame;
  for (;;) {
    const auto result = decoder_.next(frame);
    if (result == FrameDecoder::Result::kNeedMore) return common::Status::ok();
    if (result != FrameDecoder::Result::kFrame) {
      connection_error_ =
          common::Status::internal("corrupt frame from daemon; dropping connection");
      return connection_error_;
    }
    switch (frame.type) {
      case MsgType::kSolveResponse: {
        auto decoded = SolveResponse::decode(frame.payload);
        if (!decoded.is_ok()) {
          connection_error_ = decoded.status();
          return connection_error_;
        }
        solves_[decoded.value().request_id] = std::move(decoded).take();
        break;
      }
      case MsgType::kSweepResponse: {
        auto decoded = SweepResponse::decode(frame.payload);
        if (!decoded.is_ok()) {
          connection_error_ = decoded.status();
          return connection_error_;
        }
        sweeps_[decoded.value().request_id] = std::move(decoded).take();
        break;
      }
      case MsgType::kStatResponse: {
        auto decoded = StatResponse::decode(frame.payload);
        if (!decoded.is_ok()) {
          connection_error_ = decoded.status();
          return connection_error_;
        }
        stats_[decoded.value().request_id] = std::move(decoded).take();
        break;
      }
      case MsgType::kMetricsResponse: {
        auto decoded = MetricsResponse::decode(frame.payload);
        if (!decoded.is_ok()) {
          connection_error_ = decoded.status();
          return connection_error_;
        }
        metrics_[decoded.value().request_id] = std::move(decoded).take();
        break;
      }
      case MsgType::kError: {
        auto decoded = ErrorResponse::decode(frame.payload);
        if (!decoded.is_ok()) {
          connection_error_ = decoded.status();
          return connection_error_;
        }
        // id 0 = the daemon could not attribute the failure to a request
        // (e.g. our frame's CRC failed in transit) — fail the connection
        // so no wait_*() hangs forever on a request that will never be
        // answered.
        if (decoded.value().request_id == 0) {
          connection_error_ = decoded.value().status;
          return connection_error_;
        }
        errors_[decoded.value().request_id] = decoded.value().status;
        break;
      }
      default:
        connection_error_ = common::Status::internal(
            "unexpected message type " +
            std::to_string(static_cast<unsigned>(frame.type)) + " from daemon");
        return connection_error_;
    }
  }
}

common::Status Client::check_error(std::uint64_t request_id) {
  if (auto it = errors_.find(request_id); it != errors_.end()) {
    common::Status status = it->second;
    errors_.erase(it);
    return status;
  }
  if (!connection_error_.is_ok()) return connection_error_;
  return common::Status::ok();
}

common::Result<SolveResponse> Client::wait_solve(std::uint64_t request_id) {
  for (;;) {
    SolveResponse out;
    if (take_solve(request_id, &out)) return out;
    if (auto status = check_error(request_id); !status.is_ok()) return status;
    if (auto status = pump(-1); !status.is_ok()) return status;
  }
}

common::Result<SweepResponse> Client::wait_sweep(std::uint64_t request_id) {
  for (;;) {
    SweepResponse out;
    if (take_sweep(request_id, &out)) return out;
    if (auto status = check_error(request_id); !status.is_ok()) return status;
    if (auto status = pump(-1); !status.is_ok()) return status;
  }
}

common::Result<StatResponse> Client::wait_stat(std::uint64_t request_id) {
  for (;;) {
    if (auto it = stats_.find(request_id); it != stats_.end()) {
      StatResponse out = std::move(it->second);
      stats_.erase(it);
      return out;
    }
    if (auto status = check_error(request_id); !status.is_ok()) return status;
    if (auto status = pump(-1); !status.is_ok()) return status;
  }
}

common::Result<MetricsResponse> Client::wait_metrics(std::uint64_t request_id) {
  for (;;) {
    if (auto it = metrics_.find(request_id); it != metrics_.end()) {
      MetricsResponse out = std::move(it->second);
      metrics_.erase(it);
      if (!out.status.is_ok()) return out.status;
      return out;
    }
    if (auto status = check_error(request_id); !status.is_ok()) return status;
    if (auto status = pump(-1); !status.is_ok()) return status;
  }
}

common::Result<SolveResponse> Client::solve(SolveRequest request) {
  if (request.request_id == 0) request.request_id = next_request_id();
  if (auto status = send(request); !status.is_ok()) return status;
  return wait_solve(request.request_id);
}

common::Result<SweepResponse> Client::sweep(SweepRequest request) {
  if (request.request_id == 0) request.request_id = next_request_id();
  if (auto status = send(request); !status.is_ok()) return status;
  return wait_sweep(request.request_id);
}

common::Result<StatResponse> Client::stat() {
  StatRequest request;
  request.request_id = next_request_id();
  if (auto status = send(request); !status.is_ok()) return status;
  return wait_stat(request.request_id);
}

common::Result<MetricsResponse> Client::metrics(MetricsFormat format) {
  MetricsRequest request;
  request.request_id = next_request_id();
  request.format = format;
  if (auto status = send(request); !status.is_ok()) return status;
  return wait_metrics(request.request_id);
}

common::Status Client::poll(int timeout_ms) { return pump(timeout_ms); }

bool Client::take_solve(std::uint64_t request_id, SolveResponse* out) {
  auto it = solves_.find(request_id);
  if (it == solves_.end()) return false;
  *out = std::move(it->second);
  solves_.erase(it);
  return true;
}

bool Client::take_sweep(std::uint64_t request_id, SweepResponse* out) {
  auto it = sweeps_.find(request_id);
  if (it == sweeps_.end()) return false;
  *out = std::move(it->second);
  sweeps_.erase(it);
  return true;
}

}  // namespace easched::serve
