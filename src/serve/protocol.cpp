#include "serve/protocol.hpp"

#include <cstring>

#include "serve/wire.hpp"
#include "store/log.hpp"

namespace easched::serve {
namespace {

constexpr std::size_t kHeaderBytes = 1 + 8;  // type + payload length
constexpr std::size_t kCrcBytes = 4;

common::Status decode_status(wire::Reader& r) {
  const std::uint8_t code = r.get_u8();
  std::string message = r.get_string();
  if (code > static_cast<std::uint8_t>(common::StatusCode::kOverloaded)) {
    // The peer sent a code this build does not know; surface the message
    // but never trust the byte as an enum value.
    return common::Status::internal("unknown wire status code " + std::to_string(code) +
                                    ": " + message);
  }
  const auto status_code = static_cast<common::StatusCode>(code);
  if (status_code == common::StatusCode::kOk) return common::Status::ok();
  return common::Status(status_code, std::move(message));
}

common::Result<model::SpeedModelKind> decode_speed_kind(std::uint8_t byte) {
  if (byte > static_cast<std::uint8_t>(model::SpeedModelKind::kIncremental)) {
    return common::Status::invalid("unknown wire speed-model kind " +
                                   std::to_string(byte));
  }
  return static_cast<model::SpeedModelKind>(byte);
}

ProblemSpec decode_problem(wire::Reader& r, bool& kind_ok) {
  ProblemSpec spec;
  spec.dag_text = r.get_string();
  spec.processors = static_cast<std::int32_t>(r.get_u32());
  auto kind = decode_speed_kind(r.get_u8());
  kind_ok = kind.is_ok();
  if (kind_ok) spec.speed_kind = kind.value();
  spec.fmin = r.get_double();
  spec.fmax = r.get_double();
  spec.delta = r.get_double();
  spec.levels = r.get_doubles();
  spec.deadline = r.get_double();
  spec.tricrit = r.get_u8() != 0;
  spec.lambda0 = r.get_double();
  spec.dexp = r.get_double();
  spec.frel = r.get_double();
  return spec;
}

/// Shared decode epilogue: a payload must parse completely and exactly.
/// Trailing bytes are as malformed as missing ones — they mean the peer
/// and this build disagree about the schema.
common::Status finish(const wire::Reader& r, const char* what) {
  if (!r.ok()) return common::Status::invalid(std::string(what) + ": payload truncated");
  if (!r.at_end()) {
    return common::Status::invalid(std::string(what) + ": trailing bytes in payload");
  }
  return common::Status::ok();
}

}  // namespace

// ---- framing ------------------------------------------------------------

std::string encode_frame(MsgType type, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size() + kCrcBytes);
  wire::put_u8(out, static_cast<std::uint8_t>(type));
  wire::put_u64(out, payload.size());
  out += payload;
  const std::uint32_t crc = store::crc32(out.data(), out.size(), 0);
  wire::put_u32(out, crc);
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  // Reclaim the consumed prefix before growing: a long-lived connection
  // must not accumulate every frame it ever received.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return Result::kNeedMore;

  std::uint64_t len = 0;
  for (int i = 0; i < 8; ++i) {
    len |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_ + 1 + i]))
           << (8 * i);
  }
  if (len > kMaxFrameBytes) return Result::kOversized;

  const std::size_t total = kHeaderBytes + static_cast<std::size_t>(len) + kCrcBytes;
  if (avail < total) return Result::kNeedMore;

  const char* frame = buf_.data() + pos_;
  const std::size_t covered = kHeaderBytes + static_cast<std::size_t>(len);
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(static_cast<unsigned char>(frame[covered + i]))
              << (8 * i);
  }
  // The frame is fully delimited either way — consume it now so a CRC
  // failure costs exactly this frame, never the stream position.
  pos_ += total;
  if (store::crc32(frame, covered, 0) != stored) return Result::kBadCrc;

  out.type = static_cast<MsgType>(static_cast<std::uint8_t>(frame[0]));
  out.payload.assign(frame + kHeaderBytes, static_cast<std::size_t>(len));
  return Result::kFrame;
}

// ---- wire status --------------------------------------------------------

void encode_status(std::string& out, const common::Status& status) {
  wire::put_u8(out, static_cast<std::uint8_t>(status.code()));
  wire::put_string(out, status.message());
}

// ---- handshake ----------------------------------------------------------

std::string Hello::encode() const {
  std::string out;
  wire::put_u32(out, magic);
  wire::put_u16(out, version);
  wire::put_string(out, tenant);
  return out;
}

common::Result<Hello> Hello::decode(const std::string& payload) {
  wire::Reader r(payload);
  Hello msg;
  msg.magic = r.get_u32();
  msg.version = r.get_u16();
  msg.tenant = r.get_string();
  if (auto status = finish(r, "Hello"); !status.is_ok()) return status;
  return msg;
}

std::string HelloAck::encode() const {
  std::string out;
  wire::put_u16(out, version);
  encode_status(out, status);
  return out;
}

common::Result<HelloAck> HelloAck::decode(const std::string& payload) {
  wire::Reader r(payload);
  HelloAck msg;
  msg.version = r.get_u16();
  msg.status = decode_status(r);
  if (auto status = finish(r, "HelloAck"); !status.is_ok()) return status;
  return msg;
}

// ---- problems -----------------------------------------------------------

void ProblemSpec::encode(std::string& out) const {
  wire::put_string(out, dag_text);
  wire::put_u32(out, static_cast<std::uint32_t>(processors));
  wire::put_u8(out, static_cast<std::uint8_t>(speed_kind));
  wire::put_double(out, fmin);
  wire::put_double(out, fmax);
  wire::put_double(out, delta);
  wire::put_doubles(out, levels);
  wire::put_double(out, deadline);
  wire::put_u8(out, tricrit ? 1 : 0);
  wire::put_double(out, lambda0);
  wire::put_double(out, dexp);
  wire::put_double(out, frel);
}

std::string SolveRequest::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  problem.encode(out);
  wire::put_string(out, solver);
  wire::put_double(out, job_deadline_ms);
  return out;
}

common::Result<SolveRequest> SolveRequest::decode(const std::string& payload) {
  wire::Reader r(payload);
  SolveRequest msg;
  msg.request_id = r.get_u64();
  bool kind_ok = true;
  msg.problem = decode_problem(r, kind_ok);
  msg.solver = r.get_string();
  msg.job_deadline_ms = r.get_double();
  if (auto status = finish(r, "SolveRequest"); !status.is_ok()) return status;
  if (!kind_ok) return common::Status::invalid("SolveRequest: bad speed-model kind");
  return msg;
}

std::string SweepRequest::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  problem.encode(out);
  wire::put_u8(out, static_cast<std::uint8_t>(axis));
  wire::put_double(out, lo);
  wire::put_double(out, hi);
  wire::put_u32(out, static_cast<std::uint32_t>(initial_points));
  wire::put_u32(out, static_cast<std::uint32_t>(max_points));
  wire::put_string(out, solver);
  wire::put_double(out, job_deadline_ms);
  wire::put_doubles(out, prev_probes);
  return out;
}

common::Result<SweepRequest> SweepRequest::decode(const std::string& payload) {
  wire::Reader r(payload);
  SweepRequest msg;
  msg.request_id = r.get_u64();
  bool kind_ok = true;
  msg.problem = decode_problem(r, kind_ok);
  const std::uint8_t axis_byte = r.get_u8();
  msg.lo = r.get_double();
  msg.hi = r.get_double();
  msg.initial_points = static_cast<std::int32_t>(r.get_u32());
  msg.max_points = static_cast<std::int32_t>(r.get_u32());
  msg.solver = r.get_string();
  msg.job_deadline_ms = r.get_double();
  msg.prev_probes = r.get_doubles();
  if (auto status = finish(r, "SweepRequest"); !status.is_ok()) return status;
  if (!kind_ok) return common::Status::invalid("SweepRequest: bad speed-model kind");
  if (axis_byte > static_cast<std::uint8_t>(WireAxis::kReliability)) {
    return common::Status::invalid("SweepRequest: unknown sweep axis " +
                                   std::to_string(axis_byte));
  }
  msg.axis = static_cast<WireAxis>(axis_byte);
  return msg;
}

std::string StatRequest::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  return out;
}

common::Result<StatRequest> StatRequest::decode(const std::string& payload) {
  wire::Reader r(payload);
  StatRequest msg;
  msg.request_id = r.get_u64();
  if (auto status = finish(r, "StatRequest"); !status.is_ok()) return status;
  return msg;
}

std::string MetricsRequest::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  wire::put_u8(out, static_cast<std::uint8_t>(format));
  return out;
}

common::Result<MetricsRequest> MetricsRequest::decode(const std::string& payload) {
  wire::Reader r(payload);
  MetricsRequest msg;
  msg.request_id = r.get_u64();
  const std::uint8_t format_byte = r.get_u8();
  if (auto status = finish(r, "MetricsRequest"); !status.is_ok()) return status;
  if (format_byte > static_cast<std::uint8_t>(MetricsFormat::kJson)) {
    return common::Status::invalid("MetricsRequest: unknown format " +
                                   std::to_string(format_byte));
  }
  msg.format = static_cast<MetricsFormat>(format_byte);
  return msg;
}

// ---- responses ----------------------------------------------------------

std::string SolveResponse::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  encode_status(out, status);
  wire::put_double(out, energy);
  wire::put_double(out, makespan);
  wire::put_double(out, wall_ms);
  wire::put_string(out, solver);
  wire::put_u8(out, exact ? 1 : 0);
  wire::put_i64(out, iterations);
  wire::put_u32(out, static_cast<std::uint32_t>(re_executed));
  return out;
}

common::Result<SolveResponse> SolveResponse::decode(const std::string& payload) {
  wire::Reader r(payload);
  SolveResponse msg;
  msg.request_id = r.get_u64();
  msg.status = decode_status(r);
  msg.energy = r.get_double();
  msg.makespan = r.get_double();
  msg.wall_ms = r.get_double();
  msg.solver = r.get_string();
  msg.exact = r.get_u8() != 0;
  msg.iterations = r.get_i64();
  msg.re_executed = static_cast<std::int32_t>(r.get_u32());
  if (auto status = finish(r, "SolveResponse"); !status.is_ok()) return status;
  return msg;
}

std::string SweepResponse::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  encode_status(out, status);
  wire::put_u8(out, static_cast<std::uint8_t>(axis));
  wire::put_u32(out, static_cast<std::uint32_t>(points.size()));
  for (const auto& p : points) {
    wire::put_double(out, p.constraint);
    wire::put_double(out, p.energy);
    wire::put_double(out, p.makespan);
    wire::put_string(out, p.solver);
    wire::put_u8(out, p.exact ? 1 : 0);
  }
  wire::put_doubles(out, probes);
  wire::put_u64(out, evaluated);
  wire::put_u64(out, infeasible);
  wire::put_u64(out, cache_hits);
  wire::put_u64(out, prefetched);
  wire::put_double(out, wall_ms);
  return out;
}

common::Result<SweepResponse> SweepResponse::decode(const std::string& payload) {
  wire::Reader r(payload);
  SweepResponse msg;
  msg.request_id = r.get_u64();
  msg.status = decode_status(r);
  const std::uint8_t axis_byte = r.get_u8();
  const std::uint32_t num_points = r.get_u32();
  for (std::uint32_t i = 0; i < num_points && r.ok(); ++i) {
    WirePoint p;
    p.constraint = r.get_double();
    p.energy = r.get_double();
    p.makespan = r.get_double();
    p.solver = r.get_string();
    p.exact = r.get_u8() != 0;
    msg.points.push_back(std::move(p));
  }
  msg.probes = r.get_doubles();
  msg.evaluated = r.get_u64();
  msg.infeasible = r.get_u64();
  msg.cache_hits = r.get_u64();
  msg.prefetched = r.get_u64();
  msg.wall_ms = r.get_double();
  if (auto status = finish(r, "SweepResponse"); !status.is_ok()) return status;
  if (axis_byte > static_cast<std::uint8_t>(WireAxis::kReliability)) {
    return common::Status::invalid("SweepResponse: unknown sweep axis " +
                                   std::to_string(axis_byte));
  }
  msg.axis = static_cast<WireAxis>(axis_byte);
  return msg;
}

std::string StatResponse::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  wire::put_u64(out, threads);
  wire::put_u64(out, queued_jobs);
  wire::put_u64(out, cache_entries);
  wire::put_u64(out, cache_hits);
  wire::put_u64(out, cache_misses);
  wire::put_u64(out, store_hits);
  wire::put_u8(out, has_store ? 1 : 0);
  wire::put_u64(out, store_entries);
  wire::put_u64(out, store_blobs);
  wire::put_u64(out, store_bytes);
  wire::put_u64(out, tenant_accepted);
  wire::put_u64(out, tenant_shed);
  wire::put_u64(out, tenant_completed);
  wire::put_u64(out, tenant_in_flight);
  wire::put_u64(out, tenant_deadline_exceeded);
  return out;
}

common::Result<StatResponse> StatResponse::decode(const std::string& payload) {
  wire::Reader r(payload);
  StatResponse msg;
  msg.request_id = r.get_u64();
  msg.threads = r.get_u64();
  msg.queued_jobs = r.get_u64();
  msg.cache_entries = r.get_u64();
  msg.cache_hits = r.get_u64();
  msg.cache_misses = r.get_u64();
  msg.store_hits = r.get_u64();
  msg.has_store = r.get_u8() != 0;
  msg.store_entries = r.get_u64();
  msg.store_blobs = r.get_u64();
  msg.store_bytes = r.get_u64();
  msg.tenant_accepted = r.get_u64();
  msg.tenant_shed = r.get_u64();
  msg.tenant_completed = r.get_u64();
  msg.tenant_in_flight = r.get_u64();
  msg.tenant_deadline_exceeded = r.get_u64();
  if (auto status = finish(r, "StatResponse"); !status.is_ok()) return status;
  return msg;
}

std::string MetricsResponse::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  encode_status(out, status);
  wire::put_u8(out, static_cast<std::uint8_t>(format));
  wire::put_string(out, body);
  return out;
}

common::Result<MetricsResponse> MetricsResponse::decode(const std::string& payload) {
  wire::Reader r(payload);
  MetricsResponse msg;
  msg.request_id = r.get_u64();
  msg.status = decode_status(r);
  const std::uint8_t format_byte = r.get_u8();
  msg.body = r.get_string();
  if (auto status = finish(r, "MetricsResponse"); !status.is_ok()) return status;
  if (format_byte > static_cast<std::uint8_t>(MetricsFormat::kJson)) {
    return common::Status::invalid("MetricsResponse: unknown format " +
                                   std::to_string(format_byte));
  }
  msg.format = static_cast<MetricsFormat>(format_byte);
  return msg;
}

std::string ErrorResponse::encode() const {
  std::string out;
  wire::put_u64(out, request_id);
  encode_status(out, status);
  return out;
}

common::Result<ErrorResponse> ErrorResponse::decode(const std::string& payload) {
  wire::Reader r(payload);
  ErrorResponse msg;
  msg.request_id = r.get_u64();
  msg.status = decode_status(r);
  if (auto status = finish(r, "ErrorResponse"); !status.is_ok()) return status;
  return msg;
}

}  // namespace easched::serve
