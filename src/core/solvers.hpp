#pragma once
// REMOVED: the enum-based solver facade (core::solve with BiCritSolver /
// TriCritSolver) is gone. It was deprecated when the registry-driven API
// landed and its last in-tree users have been migrated.
//
// Migration:
//   core::solve(problem)                      -> api::solve(problem)   [auto-select]
//   core::solve(p, BiCritSolver::kClosedForm) -> api::solve(p, "closed-form-chain"
//                                                / "closed-form-fork" / "closed-form-sp")
//   core::solve(p, kContinuousIpm)            -> api::solve(p, "continuous-ipm")
//   core::solve(p, kVddLp)                    -> api::solve(p, "vdd-lp")
//   core::solve(p, kDiscreteBnb)              -> api::solve(p, "discrete-bnb")
//   core::solve(p, kDiscreteGreedy)           -> api::solve(p, "discrete-greedy")
//   core::solve(p, kIncrementalApprox, K)     -> api::solve(p, "incremental-approx",
//                                                {.approx_K = K})
//   core::solve(p, TriCritSolver::kChainExact)-> api::solve(p, "chain-exact")
//   (kChainGreedy -> "chain-greedy", kForkPoly -> "fork-poly",
//    kHeuristicA/B -> "heuristic-A"/"heuristic-B", kBestOf -> "best-of")
//
// New code should go one level higher still and construct an
// engine::Engine (engine/engine.hpp): one context owning the registry,
// cache, store and worker pool, with sync and async submission.

#error \
    "core/solvers.hpp was removed: use api/registry.hpp (api::solve with a registry solver name) or engine/engine.hpp (engine::Engine); see this header for the enum -> name mapping"
