#pragma once
// DEPRECATED enum solver facade, kept as a thin shim over the
// registry-driven API in api/registry.hpp so existing callers keep
// working. New code should use easched::api — `api::solve()` with a
// registry solver name (or auto-selection), and `api::solve_batch()` for
// corpus sweeps. The enums below cannot express per-solver options,
// telemetry, or solvers added after this facade froze (chain-bnb,
// discrete-chain-dp, vdd-adapt, and any user-registered solver).

#include <string>

#include "core/problem.hpp"

namespace easched::core {

enum class BiCritSolver {
  kAuto,              ///< closed form when the structure allows, else IPM/LP/B&B by model
  kClosedForm,        ///< chain/fork/SP closed forms (CONTINUOUS only)
  kContinuousIpm,     ///< barrier interior point (CONTINUOUS)
  kVddLp,             ///< simplex on the VDD LP (VDD-HOPPING)
  kDiscreteBnb,       ///< exact branch & bound (DISCRETE/INCREMENTAL)
  kDiscreteGreedy,    ///< continuous round-up + reclaim (DISCRETE/INCREMENTAL)
  kIncrementalApprox, ///< the (1+delta/fmin)^2(1+1/K)^2 scheme (INCREMENTAL)
};

constexpr const char* to_string(BiCritSolver s) noexcept {
  switch (s) {
    case BiCritSolver::kAuto: return "auto";
    case BiCritSolver::kClosedForm: return "closed-form";
    case BiCritSolver::kContinuousIpm: return "continuous-ipm";
    case BiCritSolver::kVddLp: return "vdd-lp";
    case BiCritSolver::kDiscreteBnb: return "discrete-bnb";
    case BiCritSolver::kDiscreteGreedy: return "discrete-greedy";
    case BiCritSolver::kIncrementalApprox: return "incremental-approx";
  }
  return "unknown";
}

enum class TriCritSolver {
  kChainExact,     ///< subset enumeration + water-filling (chains, small n)
  kChainGreedy,    ///< the paper's chain strategy
  kForkPoly,       ///< the polynomial fork algorithm
  kHeuristicA,     ///< uniform-slowdown heuristic (chain-centric)
  kHeuristicB,     ///< slack-driven heuristic (parallelism-centric)
  kBestOf,         ///< best of A and B
};

constexpr const char* to_string(TriCritSolver s) noexcept {
  switch (s) {
    case TriCritSolver::kChainExact: return "chain-exact";
    case TriCritSolver::kChainGreedy: return "chain-greedy";
    case TriCritSolver::kForkPoly: return "fork-poly";
    case TriCritSolver::kHeuristicA: return "heuristic-A";
    case TriCritSolver::kHeuristicB: return "heuristic-B";
    case TriCritSolver::kBestOf: return "best-of";
  }
  return "unknown";
}

struct SolveOutcome {
  sched::Schedule schedule;
  double energy = 0.0;
  std::string solver;     ///< which concrete solver produced the schedule
  int re_executed = 0;    ///< TRI-CRIT only
};

/// Solves a BI-CRIT instance; kAuto picks closed forms for recognised
/// structures under CONTINUOUS, the LP for VDD-HOPPING, B&B for small
/// discrete instances and the greedy beyond.
common::Result<SolveOutcome> solve(const BiCritProblem& problem,
                                   BiCritSolver solver = BiCritSolver::kAuto,
                                   int approx_K = 10);

/// Solves a TRI-CRIT instance (CONTINUOUS model).
common::Result<SolveOutcome> solve(const TriCritProblem& problem, TriCritSolver solver);

}  // namespace easched::core
