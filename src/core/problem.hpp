#pragma once
// The two optimisation problems of the paper (section II, Definitions 1-2)
// as value types, plus the validation entry point. Build a Dag, a Mapping
// and a SpeedModel, wrap them in a problem, and hand it to an
// engine::Engine (engine/engine.hpp) — or to the lower-level api::solve
// for one-off synchronous calls.

#include <optional>

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"
#include "sched/validator.hpp"

namespace easched::core {

/// Definition 1 — BI-CRIT: "deciding at which speed each task should be
/// processed, in order to minimise the total energy consumption E, subject
/// to the deadline bound D."
struct BiCritProblem {
  graph::Dag dag;
  sched::Mapping mapping;
  model::SpeedModel speeds;
  double deadline = 0.0;

  BiCritProblem(graph::Dag d, sched::Mapping m, model::SpeedModel s, double dl)
      : dag(std::move(d)), mapping(std::move(m)), speeds(std::move(s)), deadline(dl) {}

  /// Structural sanity of the instance (graph, mapping, deadline sign).
  common::Status validate() const;

  /// Feasibility of a candidate schedule for this instance.
  common::Status check(const sched::Schedule& schedule) const;
};

/// Definition 2 — TRI-CRIT: additionally "deciding which tasks should be
/// re-executed", subject to the reliability constraints R_i >= R_i(frel).
struct TriCritProblem {
  graph::Dag dag;
  sched::Mapping mapping;
  model::SpeedModel speeds;
  model::ReliabilityModel reliability;
  double deadline = 0.0;

  TriCritProblem(graph::Dag d, sched::Mapping m, model::SpeedModel s,
                 model::ReliabilityModel r, double dl)
      : dag(std::move(d)),
        mapping(std::move(m)),
        speeds(std::move(s)),
        reliability(std::move(r)),
        deadline(dl) {}

  common::Status validate() const;
  common::Status check(const sched::Schedule& schedule) const;
};

}  // namespace easched::core
