#pragma once
// The standard instance corpus: the "wide class of problem instances"
// (section III) over which heuristics are evaluated. Benches and
// integration tests share these families so results are comparable.

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/dag.hpp"
#include "graph/generators.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/mapping.hpp"

namespace easched::core {

/// One named instance: a dag plus a critical-path list-scheduled mapping.
struct Instance {
  std::string name;      ///< family tag, e.g. "chain", "fork", "sp", "layered"
  graph::Dag dag;
  sched::Mapping mapping;
  int processors = 1;
};

struct CorpusOptions {
  int tasks = 20;              ///< target task count per instance
  int processors = 4;          ///< platform size for mapped families
  int instances_per_family = 3;
  graph::WeightSpec weights{1.0, 10.0};
};

/// Families: chain, fork, join, fork-join, out-tree, series-parallel,
/// layered, random-dag. Chains are mapped on 1 processor, forks one task
/// per processor (the paper's settings for those results), everything else
/// via critical-path list scheduling on `processors`.
std::vector<Instance> standard_corpus(common::Rng& rng, const CorpusOptions& options = {});

/// A deadline that leaves `slack_factor` headroom over the all-fmax
/// makespan of the instance (slack_factor >= 1).
double deadline_with_slack(const Instance& instance, double fmax, double slack_factor);

}  // namespace easched::core
