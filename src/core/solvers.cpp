#include "core/solvers.hpp"

#include <cmath>

#include "bicrit/closed_form.hpp"
#include "bicrit/continuous_dag.hpp"
#include "bicrit/discrete_exact.hpp"
#include "bicrit/incremental.hpp"
#include "bicrit/vdd_lp.hpp"
#include "graph/analysis.hpp"
#include "graph/series_parallel.hpp"
#include "tricrit/chain.hpp"
#include "tricrit/fork.hpp"
#include "tricrit/heuristics.hpp"

namespace easched::core {

namespace {

common::Result<SolveOutcome> from_closed_form(common::Result<bicrit::ClosedFormResult> r,
                                              const char* name) {
  if (!r.is_ok()) return r.status();
  return SolveOutcome{std::move(r.value().schedule), r.value().energy, name, 0};
}

}  // namespace

common::Result<SolveOutcome> solve(const BiCritProblem& p, BiCritSolver solver, int approx_K) {
  if (auto st = p.validate(); !st.is_ok()) return st;
  using model::SpeedModelKind;

  switch (solver) {
    case BiCritSolver::kAuto: {
      switch (p.speeds.kind()) {
        case SpeedModelKind::kContinuous:
          if (graph::is_chain(p.dag)) {
            return from_closed_form(bicrit::solve_chain(p.dag, p.deadline, p.speeds),
                                    "closed-form-chain");
          }
          if (graph::is_fork(p.dag) &&
              p.mapping.num_processors() >= p.dag.num_tasks() - 1) {
            return from_closed_form(bicrit::solve_fork(p.dag, p.deadline, p.speeds),
                                    "closed-form-fork");
          }
          return solve(p, BiCritSolver::kContinuousIpm, approx_K);
        case SpeedModelKind::kVddHopping:
          return solve(p, BiCritSolver::kVddLp, approx_K);
        case SpeedModelKind::kDiscrete:
        case SpeedModelKind::kIncremental: {
          const double states =
              std::pow(static_cast<double>(p.speeds.num_levels()),
                       static_cast<double>(p.dag.num_tasks()));
          return solve(p,
                       states <= 2e6 ? BiCritSolver::kDiscreteBnb
                                     : BiCritSolver::kDiscreteGreedy,
                       approx_K);
        }
      }
      return common::Status::internal("unhandled speed model kind");
    }
    case BiCritSolver::kClosedForm: {
      if (graph::is_chain(p.dag)) {
        return from_closed_form(bicrit::solve_chain(p.dag, p.deadline, p.speeds),
                                "closed-form-chain");
      }
      if (graph::is_fork(p.dag)) {
        return from_closed_form(bicrit::solve_fork(p.dag, p.deadline, p.speeds),
                                "closed-form-fork");
      }
      return from_closed_form(bicrit::solve_series_parallel(p.dag, p.deadline, p.speeds),
                              "closed-form-sp");
    }
    case BiCritSolver::kContinuousIpm: {
      auto r = bicrit::solve_continuous(p.dag, p.mapping, p.deadline, p.speeds);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().schedule), r.value().energy, "continuous-ipm", 0};
    }
    case BiCritSolver::kVddLp: {
      auto r = bicrit::solve_vdd_lp(p.dag, p.mapping, p.deadline, p.speeds);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().schedule), r.value().energy, "vdd-lp", 0};
    }
    case BiCritSolver::kDiscreteBnb: {
      auto r = bicrit::solve_discrete_bnb(p.dag, p.mapping, p.deadline, p.speeds);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().schedule), r.value().energy, "discrete-bnb", 0};
    }
    case BiCritSolver::kDiscreteGreedy: {
      auto r = bicrit::solve_discrete_greedy(p.dag, p.mapping, p.deadline, p.speeds);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().schedule), r.value().energy, "discrete-greedy",
                          0};
    }
    case BiCritSolver::kIncrementalApprox: {
      auto r = bicrit::solve_incremental_approx(p.dag, p.mapping, p.deadline, p.speeds,
                                                approx_K);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().schedule), r.value().energy,
                          "incremental-approx", 0};
    }
  }
  return common::Status::internal("unhandled solver kind");
}

common::Result<SolveOutcome> solve(const TriCritProblem& p, TriCritSolver solver) {
  if (auto st = p.validate(); !st.is_ok()) return st;

  switch (solver) {
    case TriCritSolver::kChainExact:
    case TriCritSolver::kChainGreedy: {
      if (!graph::is_chain(p.dag)) {
        return common::Status::unsupported("chain solvers need a chain graph");
      }
      // Chain order = the unique topological order.
      auto topo = graph::topological_order(p.dag);
      std::vector<double> weights;
      for (graph::TaskId t : topo.value()) weights.push_back(p.dag.weight(t));
      auto r = solver == TriCritSolver::kChainExact
                   ? tricrit::solve_chain_exact(weights, p.deadline, p.reliability, p.speeds)
                   : tricrit::solve_chain_greedy(weights, p.deadline, p.reliability, p.speeds);
      if (!r.is_ok()) return r.status();
      // Map chain-position schedule back to task ids.
      sched::Schedule sched(p.dag.num_tasks());
      for (std::size_t pos = 0; pos < topo.value().size(); ++pos) {
        sched.at(topo.value()[pos]) = r.value().solution.schedule.at(static_cast<int>(pos));
      }
      return SolveOutcome{std::move(sched), r.value().solution.energy,
                          to_string(solver), r.value().solution.re_executed};
    }
    case TriCritSolver::kForkPoly: {
      auto r = tricrit::solve_fork_tricrit(p.dag, p.deadline, p.reliability, p.speeds);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().solution.schedule), r.value().solution.energy,
                          "fork-poly", r.value().solution.re_executed};
    }
    case TriCritSolver::kHeuristicA: {
      auto r = tricrit::heuristic_uniform_reexec(p.dag, p.mapping, p.deadline, p.reliability,
                                                 p.speeds);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().schedule), r.value().energy, "heuristic-A",
                          r.value().re_executed};
    }
    case TriCritSolver::kHeuristicB: {
      auto r = tricrit::heuristic_slack_reexec(p.dag, p.mapping, p.deadline, p.reliability,
                                               p.speeds);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().schedule), r.value().energy, "heuristic-B",
                          r.value().re_executed};
    }
    case TriCritSolver::kBestOf: {
      auto r = tricrit::heuristic_best_of(p.dag, p.mapping, p.deadline, p.reliability,
                                          p.speeds);
      if (!r.is_ok()) return r.status();
      return SolveOutcome{std::move(r.value().schedule), r.value().energy, "best-of",
                          r.value().re_executed};
    }
  }
  return common::Status::internal("unhandled solver kind");
}

}  // namespace easched::core
