// Deprecated enum facade, now a thin shim over the registry-driven
// easched::api layer. Enum values map onto registry names; kAuto maps
// onto capability-based auto-selection (api::SolverRegistry::select),
// which reproduces the facade's historical routing exactly.

#include "core/solvers.hpp"

#include "api/registry.hpp"
#include "graph/analysis.hpp"

namespace easched::core {

namespace {

common::Result<SolveOutcome> from_report(common::Result<api::SolveReport> r) {
  if (!r.is_ok()) return r.status();
  auto report = std::move(r).take();
  return SolveOutcome{std::move(report.schedule), report.energy, std::move(report.solver),
                      report.re_executed};
}

}  // namespace

common::Result<SolveOutcome> solve(const BiCritProblem& p, BiCritSolver solver,
                                   int approx_K) {
  api::SolveOptions options;
  options.approx_K = approx_K;

  std::string name;
  switch (solver) {
    case BiCritSolver::kAuto:
      break;  // empty name = registry auto-selection
    case BiCritSolver::kClosedForm:
      // The enum conflated the three structure-specific closed forms; the
      // registry names them individually.
      name = graph::is_chain(p.dag)  ? "closed-form-chain"
             : graph::is_fork(p.dag) ? "closed-form-fork"
                                     : "closed-form-sp";
      break;
    case BiCritSolver::kContinuousIpm:
      name = "continuous-ipm";
      break;
    case BiCritSolver::kVddLp:
      name = "vdd-lp";
      break;
    case BiCritSolver::kDiscreteBnb:
      name = "discrete-bnb";
      break;
    case BiCritSolver::kDiscreteGreedy:
      name = "discrete-greedy";
      break;
    case BiCritSolver::kIncrementalApprox:
      name = "incremental-approx";
      break;
  }
  if (name.empty() && solver != BiCritSolver::kAuto) {
    return common::Status::internal("unhandled solver kind");
  }
  return from_report(api::solve(api::SolveRequest(p, std::move(name), options)));
}

common::Result<SolveOutcome> solve(const TriCritProblem& p, TriCritSolver solver) {
  std::string name;
  switch (solver) {
    case TriCritSolver::kChainExact: name = "chain-exact"; break;
    case TriCritSolver::kChainGreedy: name = "chain-greedy"; break;
    case TriCritSolver::kForkPoly: name = "fork-poly"; break;
    case TriCritSolver::kHeuristicA: name = "heuristic-A"; break;
    case TriCritSolver::kHeuristicB: name = "heuristic-B"; break;
    case TriCritSolver::kBestOf: name = "best-of"; break;
  }
  if (name.empty()) return common::Status::internal("unhandled solver kind");
  return from_report(api::solve(api::SolveRequest(p, std::move(name))));
}

}  // namespace easched::core
