#include "core/problem.hpp"

namespace easched::core {

common::Status BiCritProblem::validate() const {
  if (deadline <= 0.0) return common::Status::invalid("deadline must be positive");
  if (auto st = dag.validate(); !st.is_ok()) return st;
  return mapping.validate(dag);
}

common::Status BiCritProblem::check(const sched::Schedule& schedule) const {
  sched::ValidationInput in;
  in.speed_model = &speeds;
  in.deadline = deadline;
  in.allow_re_execution = false;
  return sched::validate_schedule(dag, mapping, schedule, in);
}

common::Status TriCritProblem::validate() const {
  if (deadline <= 0.0) return common::Status::invalid("deadline must be positive");
  if (auto st = dag.validate(); !st.is_ok()) return st;
  return mapping.validate(dag);
}

common::Status TriCritProblem::check(const sched::Schedule& schedule) const {
  sched::ValidationInput in;
  in.speed_model = &speeds;
  in.reliability = &reliability;
  in.deadline = deadline;
  in.allow_re_execution = true;
  return sched::validate_schedule(dag, mapping, schedule, in);
}

}  // namespace easched::core
