#include "core/corpus.hpp"

#include "graph/analysis.hpp"
#include "graph/generators.hpp"

namespace easched::core {

namespace {

Instance mapped_instance(std::string name, graph::Dag dag, int processors,
                         common::Rng& /*rng*/) {
  auto mapping = sched::list_schedule(dag, processors, sched::PriorityPolicy::kCriticalPath);
  return Instance{std::move(name), std::move(dag), std::move(mapping), processors};
}

}  // namespace

std::vector<Instance> standard_corpus(common::Rng& rng, const CorpusOptions& opt) {
  std::vector<Instance> out;
  const int n = opt.tasks;
  for (int k = 0; k < opt.instances_per_family; ++k) {
    {  // chain on one processor (the TRI-CRIT NP-hardness setting)
      auto dag = graph::make_chain(n, opt.weights, rng);
      auto topo = graph::topological_order(dag).value();
      auto mapping = sched::Mapping::single_processor(dag, topo);
      out.push_back(Instance{"chain", std::move(dag), std::move(mapping), 1});
    }
    {  // fork, one task per processor (the fork-theorem setting)
      auto weights = graph::random_weights(n, opt.weights, rng);
      auto dag = graph::make_fork(weights);
      auto mapping = sched::Mapping::one_task_per_processor(dag);
      out.push_back(Instance{"fork", std::move(dag), std::move(mapping), n});
    }
    {
      auto weights = graph::random_weights(n, opt.weights, rng);
      auto dag = graph::make_join(weights);
      auto mapping = sched::Mapping::one_task_per_processor(dag);
      out.push_back(Instance{"join", std::move(dag), std::move(mapping), n});
    }
    {
      auto weights = graph::random_weights(n, opt.weights, rng);
      out.push_back(mapped_instance("fork-join", graph::make_fork_join(weights),
                                    opt.processors, rng));
    }
    out.push_back(mapped_instance("out-tree",
                                  graph::make_out_tree(n, 3, opt.weights, rng),
                                  opt.processors, rng));
    out.push_back(mapped_instance(
        "sp", graph::make_random_series_parallel(n, opt.weights, rng), opt.processors, rng));
    out.push_back(mapped_instance(
        "layered",
        graph::make_layered(std::max(2, n / 5), 5, 0.35, opt.weights, rng),
        opt.processors, rng));
    out.push_back(mapped_instance("random-dag",
                                  graph::make_random_dag(n, 0.15, opt.weights, rng),
                                  opt.processors, rng));
  }
  return out;
}

double deadline_with_slack(const Instance& instance, double fmax, double slack_factor) {
  EASCHED_CHECK(slack_factor >= 1.0);
  const graph::Dag aug = instance.mapping.augmented_graph(instance.dag);
  std::vector<double> d(static_cast<std::size_t>(instance.dag.num_tasks()));
  for (graph::TaskId t = 0; t < instance.dag.num_tasks(); ++t) {
    d[static_cast<std::size_t>(t)] = instance.dag.weight(t) / fmax;
  }
  return graph::time_analysis(aug, d, 0.0).makespan * slack_factor;
}

}  // namespace easched::core
