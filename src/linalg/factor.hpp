#pragma once
// Dense factorizations: Cholesky (SPD) and LU with partial pivoting.
//
// The barrier interior-point solver forms SPD Newton systems
// (diag + A^T diag A); Cholesky is the fast path and LU the fallback
// when near-singularity makes the Cholesky fail.

#include <cstddef>
#include <vector>

#include "common/status.hpp"
#include "linalg/matrix.hpp"

namespace easched::linalg {

/// In-place lower Cholesky factor of an SPD matrix.
///
/// Returns a non-OK status when a non-positive pivot is met (matrix not
/// numerically SPD); in that case the caller should fall back to LU.
class Cholesky {
 public:
  /// Factors A (symmetric positive definite, only lower triangle read).
  static common::Result<Cholesky> factor(const Matrix& a);

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  std::size_t dim() const noexcept { return l_.rows(); }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;  // lower-triangular factor
};

/// LU factorization with partial (row) pivoting.
class Lu {
 public:
  /// Factors a square matrix; fails when numerically singular.
  static common::Result<Lu> factor(const Matrix& a);

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Determinant sign * product of pivots (useful in tests).
  double determinant() const noexcept;

  std::size_t dim() const noexcept { return lu_.rows(); }

 private:
  Lu(Matrix lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}
  Matrix lu_;                       // packed L (unit diag) and U
  std::vector<std::size_t> perm_;   // row permutation
  int sign_ = 1;
};

/// Convenience: solve A x = b via Cholesky, LU fallback.
common::Result<Vector> solve_spd(const Matrix& a, const Vector& b);

}  // namespace easched::linalg
