#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace easched::linalg {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::multiply(const Vector& x) const {
  EASCHED_CHECK(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += a[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::multiply_transposed(const Vector& x) const {
  EASCHED_CHECK(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += a[c] * xr;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  EASCHED_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(r);
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

void Matrix::add_outer(double alpha, const Vector& a, const Vector& b) {
  EASCHED_CHECK(a.size() == rows_ && b.size() == cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double ar = alpha * a[r];
    if (ar == 0.0) continue;
    double* orow = row(r);
    for (std::size_t c = 0; c < cols_; ++c) orow[c] += ar * b[c];
  }
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double dot(const Vector& a, const Vector& b) noexcept {
  double acc = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) noexcept { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) noexcept {
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(Vector& v, double alpha) noexcept {
  for (double& x : v) x *= alpha;
}

Vector subtract(const Vector& a, const Vector& b) {
  EASCHED_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(const Vector& a, const Vector& b) {
  EASCHED_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace easched::linalg
