#include "linalg/factor.hpp"

#include <cmath>
#include <utility>

namespace easched::linalg {

common::Result<Cholesky> Cholesky::factor(const Matrix& a) {
  EASCHED_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      return common::Status::not_converged("Cholesky: non-positive pivot at column " +
                                           std::to_string(j));
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / ljj;
    }
  }
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = dim();
  EASCHED_CHECK(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    const double* lrow = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) v -= lrow[k] * y[k];
    y[i] = v / lrow[i];
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * x[k];
    x[ii] = v / l_(ii, ii);
  }
  return x;
}

common::Result<Lu> Lu::factor(const Matrix& a) {
  EASCHED_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;
  for (std::size_t col = 0; col < n; ++col) {
    // partial pivot
    std::size_t piv = col;
    double best = std::fabs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-300 || !std::isfinite(best)) {
      return common::Status::not_converged("LU: singular at column " + std::to_string(col));
    }
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(piv, c), lu(col, c));
      std::swap(perm[piv], perm[col]);
      sign = -sign;
    }
    const double d = lu(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = lu(r, col) / d;
      lu(r, col) = m;
      if (m == 0.0) continue;
      double* rrow = lu.row(r);
      const double* crow = lu.row(col);
      for (std::size_t c = col + 1; c < n; ++c) rrow[c] -= m * crow[c];
    }
  }
  return Lu(std::move(lu), std::move(perm), sign);
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = dim();
  EASCHED_CHECK(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[perm_[i]];
    const double* lrow = lu_.row(i);
    for (std::size_t k = 0; k < i; ++k) v -= lrow[k] * y[k];
    y[i] = v;
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    const double* urow = lu_.row(ii);
    for (std::size_t k = ii + 1; k < n; ++k) v -= urow[k] * x[k];
    x[ii] = v / urow[ii];
  }
  return x;
}

double Lu::determinant() const noexcept {
  double det = sign_;
  for (std::size_t i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

common::Result<Vector> solve_spd(const Matrix& a, const Vector& b) {
  auto chol = Cholesky::factor(a);
  if (chol.is_ok()) return chol.value().solve(b);
  auto lu = Lu::factor(a);
  if (!lu.is_ok()) return lu.status();
  return lu.value().solve(b);
}

}  // namespace easched::linalg
