#pragma once
// Dense linear algebra: row-major Matrix over double, and free functions on
// std::vector<double> treated as dense vectors.
//
// This is a deliberately small substrate — just what the barrier
// interior-point method (opt/) and the simplex solver (lp/) need:
// matvec, transposed matvec, rank-1 style accumulation, norms, and the
// factorizations in factor.hpp.

#include <cstddef>
#include <vector>

#include "common/status.hpp"

namespace easched::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix, zero-initialised (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  /// Raw pointer to row r (contiguous, cols() entries).
  double* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const noexcept { return data_.data() + r * cols_; }

  /// y = A x. Requires x.size()==cols().
  Vector multiply(const Vector& x) const;
  /// y = A^T x. Requires x.size()==rows().
  Vector multiply_transposed(const Vector& x) const;
  /// C = A * B.
  Matrix multiply(const Matrix& other) const;
  Matrix transposed() const;

  /// this += alpha * (a outer b), i.e. this(r,c) += alpha*a[r]*b[c].
  void add_outer(double alpha, const Vector& a, const Vector& b);

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

// ---- Vector helpers -------------------------------------------------------

double dot(const Vector& a, const Vector& b) noexcept;
double norm2(const Vector& v) noexcept;
double norm_inf(const Vector& v) noexcept;
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y) noexcept;
/// v *= alpha
void scale(Vector& v, double alpha) noexcept;
/// a - b
Vector subtract(const Vector& a, const Vector& b);
/// a + b
Vector add(const Vector& a, const Vector& b);

}  // namespace easched::linalg
