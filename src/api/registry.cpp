#include "api/registry.hpp"

#include <mutex>
#include <utility>

#include "api/builtin.hpp"

namespace easched::api {

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry;
  static std::once_flag once;
  std::call_once(once, [] {
    register_builtin_bicrit_solvers(registry);
    register_builtin_tricrit_solvers(registry);
  });
  return registry;
}

common::Status SolverRegistry::add(std::unique_ptr<Solver> solver) {
  if (solver == nullptr) return common::Status::invalid("cannot register a null solver");
  const common::MutexLock lock(mutex_);
  for (const auto& existing : solvers_) {
    if (existing->name() == solver->name()) {
      return common::Status::invalid("solver '" + std::string(solver->name()) +
                                     "' is already registered");
    }
  }
  solvers_.push_back(std::move(solver));
  return common::Status::ok();
}

const Solver* SolverRegistry::find(std::string_view name) const {
  const common::MutexLock lock(mutex_);
  for (const auto& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  return nullptr;
}

std::vector<std::string> SolverRegistry::names(std::optional<ProblemKind> kind) const {
  const common::MutexLock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& solver : solvers_) {
    if (kind && solver->capabilities().problem != *kind) continue;
    out.emplace_back(solver->name());
  }
  return out;
}

common::Result<const Solver*> SolverRegistry::select(const SolveRequest& request) const {
  request.structure();  // classify (and cache) outside the lock
  const common::MutexLock lock(mutex_);
  const Solver* best = nullptr;
  for (const auto& solver : solvers_) {
    if (!solver->accepts(request)) continue;
    if (best == nullptr ||
        solver->capabilities().auto_priority > best->capabilities().auto_priority) {
      best = solver.get();
    }
  }
  if (best == nullptr) {
    return common::Status::unsupported(
        std::string("no registered solver accepts this ") + to_string(request.kind()) +
        " instance (speed model " + model::to_string(request.speeds().kind()) +
        ", structure " + to_string(request.structure()) + ")");
  }
  return best;
}

std::size_t SolverRegistry::size() const {
  const common::MutexLock lock(mutex_);
  return solvers_.size();
}

common::Result<SolveReport> solve(const SolveRequest& request) {
  if (auto st = request.validate(); !st.is_ok()) return st;

  const SolverRegistry& registry = SolverRegistry::instance();
  const Solver* solver = nullptr;
  if (request.solver.empty()) {
    auto selected = registry.select(request);
    if (!selected.is_ok()) return selected.status();
    solver = selected.value();
  } else {
    solver = registry.find(request.solver);
    if (solver == nullptr) {
      std::string known;
      for (const auto& name : registry.names(request.kind())) {
        known += known.empty() ? name : (", " + name);
      }
      return common::Status::not_found("no solver named '" + request.solver +
                                       "'; registered for " + to_string(request.kind()) +
                                       ": " + known);
    }
  }
  return solver->run(request);
}

common::Result<SolveReport> solve(const core::BiCritProblem& problem,
                                  const SolveOptions& options) {
  return solve(SolveRequest(problem, {}, options));
}

common::Result<SolveReport> solve(const core::BiCritProblem& problem,
                                  std::string_view solver, const SolveOptions& options) {
  return solve(SolveRequest(problem, std::string(solver), options));
}

common::Result<SolveReport> solve(const core::TriCritProblem& problem,
                                  const SolveOptions& options) {
  return solve(SolveRequest(problem, {}, options));
}

common::Result<SolveReport> solve(const core::TriCritProblem& problem,
                                  std::string_view solver, const SolveOptions& options) {
  return solve(SolveRequest(problem, std::string(solver), options));
}

}  // namespace easched::api
