#include "api/batch.hpp"

#include <chrono>
#include <utility>

#include "common/parallel.hpp"

namespace easched::api {

BatchReport aggregate_batch(const std::vector<BatchJob>& jobs,
                            std::vector<common::Result<SolveReport>> results) {
  BatchReport report;
  report.results = std::move(results);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    FamilyAggregate& agg = report.by_family[jobs[i].family];
    const auto& result = report.results[i];
    if (!result.is_ok()) {
      ++agg.failed;
      ++report.failed;
      continue;
    }
    agg.energy.add(result.value().energy);
    agg.wall_ms.add(result.value().wall_ms);
    agg.makespan.add(result.value().makespan);
    ++agg.solved;
    ++report.solved;
  }
  return report;
}

BatchReport solve_batch(const std::vector<BatchJob>& jobs, const BatchOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  std::vector<common::Result<SolveReport>> results(
      jobs.size(), common::Result<SolveReport>(common::Status::internal("job not executed")));

  common::parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        const BatchJob& job = jobs[i];
        const std::string& solver = job.solver.empty() ? options.solver : job.solver;
        if ((job.bicrit != nullptr) == (job.tricrit != nullptr)) {
          results[i] = common::Status::invalid(
              "batch job must carry exactly one of a BI-CRIT or TRI-CRIT problem");
          return;
        }
        results[i] = job.bicrit != nullptr
                         ? solve(SolveRequest(*job.bicrit, solver, options.solve))
                         : solve(SolveRequest(*job.tricrit, solver, options.solve));
      },
      options.threads);

  BatchReport report = aggregate_batch(jobs, std::move(results));
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return report;
}

std::vector<BatchJob> corpus_bicrit_jobs(const std::vector<core::Instance>& corpus,
                                         const model::SpeedModel& speeds,
                                         double slack_factor) {
  std::vector<BatchJob> jobs;
  jobs.reserve(corpus.size());
  for (const auto& inst : corpus) {
    const double deadline = core::deadline_with_slack(inst, speeds.fmax(), slack_factor);
    BatchJob job;
    job.family = inst.name;
    job.bicrit = std::make_shared<const core::BiCritProblem>(inst.dag, inst.mapping,
                                                             speeds, deadline);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<BatchJob> corpus_tricrit_jobs(const std::vector<core::Instance>& corpus,
                                          const model::SpeedModel& speeds,
                                          const model::ReliabilityModel& reliability,
                                          double slack_factor) {
  std::vector<BatchJob> jobs;
  jobs.reserve(corpus.size());
  for (const auto& inst : corpus) {
    const double deadline =
        core::deadline_with_slack(inst, speeds.fmax(), slack_factor) / reliability.frel();
    BatchJob job;
    job.family = inst.name;
    job.tricrit = std::make_shared<const core::TriCritProblem>(
        inst.dag, inst.mapping, speeds, reliability, deadline);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace easched::api
