#pragma once
// Request digests — the identity layer under solve memoization.
//
// A SolveRequest splits into two parts with very different lifetimes:
//
//  * the *instance* (problem kind, graph weights and edges, mapping
//    orders, speed model, reliability statics) — large, and constant
//    across the hundreds of probes of one frontier sweep;
//  * the *point* (effective deadline, reliability threshold frel, solver
//    name, option knobs) — a handful of scalars that change per probe.
//
// This header serialises the instance part once into an exact canonical
// byte string (`instance_bytes`) and condenses it into a 128-bit
// `InstanceDigest`. Caches key repeat traffic on the digest and fall back
// to the byte string on the (astronomically rare) digest collision, so a
// hit can never alias two instances a solver could tell apart — see
// frontier/cache.hpp for the interning scheme that makes per-probe
// lookups O(1) in the instance size.
//
// The serialisation is built from fixed-width fields (doubles as IEEE bit
// patterns, ints as int64), each section preceded by a one-byte tag that
// keeps the encoding prefix-free: two different instances can never
// concatenate to the same string. Task names are excluded — no algorithm
// reads them.

#include <cstdint>
#include <string>

#include "api/solver.hpp"

namespace easched::api {

/// 128-bit condensation of an instance byte string. Equality of digests
/// is necessary but not sufficient for equality of instances; exactness
/// is restored by comparing the byte strings on digest collision.
struct InstanceDigest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const InstanceDigest& a, const InstanceDigest& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const InstanceDigest& a, const InstanceDigest& b) noexcept {
    return !(a == b);
  }
};

/// splitmix64 finaliser: full-avalanche 64-bit mixing. The one mixing
/// primitive shared by digest_bytes and the frontier cache's key hash —
/// keep them on the same constants so the two never drift apart.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Exact canonical serialisation of the instance part of `request`:
/// problem kind, DAG weights and edges, mapping orders, speed model, and
/// the reliability statics (lambda0, sensitivity, fmin, fmax) of a
/// TRI-CRIT problem. Deliberately excludes everything that varies per
/// sweep point: the effective deadline, frel, the solver name and the
/// solve options.
std::string instance_bytes(const SolveRequest& request);

/// 128-bit hash of an arbitrary byte string (used on instance_bytes).
/// Deterministic across processes and platforms, so digests can key
/// persistent caches.
InstanceDigest digest_bytes(const std::string& bytes);

/// digest_bytes(instance_bytes(request)) in one call — O(instance size);
/// compute it once per instance, not once per probe.
InstanceDigest instance_digest(const SolveRequest& request);

/// Appends the per-point suffix (effective deadline, frel for TRI-CRIT,
/// solver name, options) to `out`. instance_bytes + point suffix together
/// cover every field a solver can observe, so the concatenation is a
/// full-fidelity request fingerprint (frontier::canonical_fingerprint).
void append_point_bytes(std::string& out, const SolveRequest& request);

}  // namespace easched::api
