#pragma once
// Batch execution: fan a corpus of instances across the thread pool and
// aggregate per-family statistics — the building block for the paper's
// "wide class of problem instances" sweeps at high throughput.
//
// Determinism: every job is solved by the same deterministic solver it
// would get sequentially, so `solve_batch` returns bit-identical energies
// and schedules regardless of the thread count; only wall times vary.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/solver.hpp"
#include "common/stats.hpp"
#include "core/corpus.hpp"
#include "model/reliability.hpp"

namespace easched::api {

/// One unit of batch work: a problem plus its aggregation key. Problems
/// are shared_ptrs so a corpus can be built once and sliced into many
/// batches without copies. Exactly one of bicrit/tricrit must be set.
struct BatchJob {
  std::string family;  ///< aggregation key (e.g. the corpus family tag)
  std::string solver;  ///< per-job solver override; empty = batch-level policy
  std::shared_ptr<const core::BiCritProblem> bicrit;
  std::shared_ptr<const core::TriCritProblem> tricrit;
};

struct BatchOptions {
  std::string solver;   ///< solver for every job (empty = auto-select per instance)
  SolveOptions solve;   ///< options passed to every solve
  std::size_t threads = 0;  ///< worker threads; 0 = common::default_thread_count()
};

/// Welford aggregates of one family's solved instances.
struct FamilyAggregate {
  common::OnlineStats energy;
  common::OnlineStats wall_ms;
  common::OnlineStats makespan;
  std::size_t solved = 0;
  std::size_t failed = 0;
};

struct BatchReport {
  /// Per-job outcome, index-aligned with the input jobs.
  std::vector<common::Result<SolveReport>> results;
  /// Aggregates over the solved jobs, keyed by BatchJob::family.
  std::map<std::string, FamilyAggregate> by_family;
  std::size_t solved = 0;
  std::size_t failed = 0;
  double wall_ms = 0.0;  ///< whole-batch wall clock
};

/// Solves every job on the common/parallel thread pool and aggregates
/// per-family statistics. Job-level failures (infeasible instance,
/// unknown solver name, ...) land in `results` and the `failed` counters;
/// the batch itself always completes.
BatchReport solve_batch(const std::vector<BatchJob>& jobs, const BatchOptions& options = {});

/// Folds index-aligned per-job outcomes into a BatchReport (per-family
/// Welford aggregates, solved/failed counters). Shared by solve_batch and
/// by executors that run the jobs themselves (the engine façade routes
/// batch queries through its cache and worker pool, then aggregates
/// here); wall_ms is left 0 for the caller to stamp.
BatchReport aggregate_batch(const std::vector<BatchJob>& jobs,
                            std::vector<common::Result<SolveReport>> results);

/// BI-CRIT jobs over a corpus: one job per instance, deadline set to
/// `slack_factor` headroom over the all-fmax makespan.
std::vector<BatchJob> corpus_bicrit_jobs(const std::vector<core::Instance>& corpus,
                                         const model::SpeedModel& speeds,
                                         double slack_factor);

/// TRI-CRIT jobs over a corpus; the deadline additionally absorbs the
/// 1/frel reliability headroom (the benches' convention).
std::vector<BatchJob> corpus_tricrit_jobs(const std::vector<core::Instance>& corpus,
                                          const model::SpeedModel& speeds,
                                          const model::ReliabilityModel& reliability,
                                          double slack_factor);

}  // namespace easched::api
