#include "api/solver.hpp"

#include <chrono>

#include "graph/analysis.hpp"
#include "graph/series_parallel.hpp"

namespace easched::api {

GraphClass classify_structure(const graph::Dag& dag) {
  if (graph::is_chain(dag)) return GraphClass::kChain;
  if (graph::is_fork(dag)) return GraphClass::kFork;
  if (graph::is_series_parallel(dag)) return GraphClass::kSeriesParallel;
  return GraphClass::kGeneral;
}

common::Status SolveRequest::validate() const {
  if (validated_) return common::Status::ok();
  if (bicrit == nullptr && tricrit == nullptr) {
    return common::Status::invalid("request carries no problem");
  }
  if (bicrit != nullptr && tricrit != nullptr) {
    return common::Status::invalid("request carries both a BI-CRIT and a TRI-CRIT problem");
  }
  if (options.deadline_slack <= 0.0) {
    return common::Status::invalid("deadline_slack must be positive");
  }
  if (options.approx_K < 1) return common::Status::invalid("approx_K must be >= 1");
  if (options.dp_buckets < 1) return common::Status::invalid("dp_buckets must be >= 1");
  if (options.fork_grid < 2) return common::Status::invalid("fork_grid must be >= 2");
  auto st = bicrit != nullptr ? bicrit->validate() : tricrit->validate();
  validated_ = st.is_ok();
  return st;
}

bool Solver::accepts(const SolveRequest& request) const {
  const Capabilities& caps = capabilities();
  if (caps.auto_priority < 0) return false;
  if (caps.problem != request.kind()) return false;
  if (!caps.supports(request.speeds().kind())) return false;
  return caps.supports(request.structure());
}

common::Result<SolveReport> Solver::run(const SolveRequest& request) const {
  if (auto st = request.validate(); !st.is_ok()) return st;
  if (capabilities().problem != request.kind()) {
    return common::Status::unsupported(std::string(name()) + " solves " +
                                       to_string(capabilities().problem) + ", got a " +
                                       to_string(request.kind()) + " problem");
  }
  const auto start = std::chrono::steady_clock::now();
  auto result = do_run(request);
  if (!result.is_ok()) return result.status();

  SolveReport report = std::move(result).take();
  report.solver = std::string(name());
  report.problem = request.kind();
  report.makespan = sched::makespan(request.dag(), request.mapping(), report.schedule);
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return report;
}

}  // namespace easched::api
