// BI-CRIT members of the solver family, adapted onto the api::Solver
// interface. Registry names are stable (tests and the README table rely
// on them); auto-selection priorities reproduce the routing the old enum
// facade's kAuto implemented:
//   chain/fork closed forms > interior point  (CONTINUOUS)
//   vdd-lp                                    (VDD-HOPPING)
//   bnb (small search space) > greedy         (DISCRETE/INCREMENTAL)
// closed-form-sp, incremental-approx and discrete-chain-dp are
// explicit-by-name only, matching the facade.

#include <cmath>
#include <memory>
#include <vector>

#include "api/builtin.hpp"
#include "api/registry.hpp"
#include "bicrit/closed_form.hpp"
#include "bicrit/continuous_dag.hpp"
#include "bicrit/discrete_exact.hpp"
#include "bicrit/incremental.hpp"
#include "bicrit/vdd_lp.hpp"
#include "graph/analysis.hpp"

namespace easched::api {

common::Result<std::vector<double>> chain_weights(const graph::Dag& dag,
                                                  std::string_view solver_name,
                                                  std::vector<graph::TaskId>& order) {
  if (!graph::is_chain(dag)) {
    return common::Status::unsupported(std::string(solver_name) + " needs a chain graph");
  }
  auto topo = graph::topological_order(dag);
  if (!topo.is_ok()) return topo.status();
  order = std::move(topo).take();
  std::vector<double> weights;
  weights.reserve(order.size());
  for (graph::TaskId t : order) weights.push_back(dag.weight(t));
  return weights;
}

sched::Schedule chain_schedule_to_tasks(const std::vector<graph::TaskId>& order,
                                        const sched::Schedule& by_position) {
  sched::Schedule schedule(static_cast<int>(order.size()));
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    schedule.at(order[pos]) = by_position.at(static_cast<int>(pos));
  }
  return schedule;
}

namespace {

using model::SpeedModelKind;

constexpr unsigned kDiscreteKinds =
    speed_bit(SpeedModelKind::kDiscrete) | speed_bit(SpeedModelKind::kIncremental);

SolveReport report_from(sched::Schedule schedule, double energy) {
  SolveReport report;
  report.schedule = std::move(schedule);
  report.energy = energy;
  return report;
}

class ClosedFormChainSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "closed-form-chain"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kBiCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   structure_bit(GraphClass::kChain),
                                   /*exact=*/true,
                                   /*auto_priority=*/100,
                                   "section III: chain closed form"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    if (!graph::is_chain(request.dag())) {
      return common::Status::unsupported("closed-form-chain needs a chain graph");
    }
    auto r = bicrit::solve_chain(request.dag(), request.deadline(), request.speeds());
    if (!r.is_ok()) return r.status();
    auto report = report_from(std::move(r.value().schedule), r.value().energy);
    report.exact = true;
    return report;
  }
};

class ClosedFormForkSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "closed-form-fork"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kBiCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   structure_bit(GraphClass::kFork),
                                   /*exact=*/true,
                                   /*auto_priority=*/90,
                                   "section III: fork theorem"};
    return caps;
  }

  bool accepts(const SolveRequest& request) const override {
    // The fork theorem assumes every branch on its own processor; route
    // thinner mappings to the general continuous solver instead.
    return Solver::accepts(request) &&
           request.mapping().num_processors() >= request.dag().num_tasks() - 1;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    if (!graph::is_fork(request.dag())) {
      return common::Status::unsupported("closed-form-fork needs a fork graph");
    }
    auto r = bicrit::solve_fork(request.dag(), request.deadline(), request.speeds());
    if (!r.is_ok()) return r.status();
    auto report = report_from(std::move(r.value().schedule), r.value().energy);
    report.exact = true;
    return report;
  }
};

class ClosedFormSpSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "closed-form-sp"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kBiCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   structure_bit(GraphClass::kChain) |
                                       structure_bit(GraphClass::kFork) |
                                       structure_bit(GraphClass::kSeriesParallel),
                                   /*exact=*/true,
                                   /*auto_priority=*/-1,  // explicit-only: assumes
                                                          // one processor per branch
                                   "section III: SP/tree closed forms"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    auto r = bicrit::solve_series_parallel(request.dag(), request.deadline(),
                                           request.speeds());
    if (!r.is_ok()) return r.status();
    auto report = report_from(std::move(r.value().schedule), r.value().energy);
    report.exact = true;
    return report;
  }
};

class ContinuousIpmSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "continuous-ipm"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kBiCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   kAllStructures,
                                   /*exact=*/true,
                                   /*auto_priority=*/50,
                                   "section III: convex program on general DAGs"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    bicrit::ContinuousOptions opts;
    if (request.options.gap_tolerance > 0.0) {
      opts.barrier.gap_tolerance = request.options.gap_tolerance;
    }
    // Warm start from a neighbouring solution when the caller has one
    // (solve_continuous validates the size and clamps into the interior).
    opts.start_durations = request.options.start_durations;
    auto r = bicrit::solve_continuous(request.dag(), request.mapping(),
                                      request.deadline(), request.speeds(), opts);
    if (!r.is_ok()) return r.status();
    auto report = report_from(std::move(r.value().schedule), r.value().energy);
    report.exact = true;
    report.iterations = r.value().newton_steps;
    report.gap_bound = r.value().gap_bound;
    return report;
  }
};

class VddLpSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "vdd-lp"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kBiCrit,
                                   speed_bit(SpeedModelKind::kVddHopping),
                                   kAllStructures,
                                   /*exact=*/true,
                                   /*auto_priority=*/100,
                                   "section IV: VDD-HOPPING LP"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    auto r = bicrit::solve_vdd_lp(request.dag(), request.mapping(), request.deadline(),
                                  request.speeds());
    if (!r.is_ok()) return r.status();
    auto report = report_from(std::move(r.value().schedule), r.value().energy);
    report.exact = true;
    report.iterations = r.value().lp_iterations;
    return report;
  }
};

class DiscreteBnbSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "discrete-bnb"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kBiCrit,
                                   kDiscreteKinds,
                                   kAllStructures,
                                   /*exact=*/true,
                                   /*auto_priority=*/60,
                                   "section IV: DISCRETE is NP-complete (exact B&B)"};
    return caps;
  }

  bool accepts(const SolveRequest& request) const override {
    if (!Solver::accepts(request)) return false;
    // Exact search only when the level^task space is small enough;
    // beyond that auto-selection falls through to discrete-greedy.
    const double states =
        std::pow(static_cast<double>(request.speeds().num_levels()),
                 static_cast<double>(request.dag().num_tasks()));
    return states <= 2e6;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    bicrit::BnbOptions opts;
    if (request.options.max_nodes > 0) opts.max_nodes = request.options.max_nodes;
    auto r = bicrit::solve_discrete_bnb(request.dag(), request.mapping(),
                                        request.deadline(), request.speeds(), opts);
    if (!r.is_ok()) return r.status();
    auto report = report_from(std::move(r.value().schedule), r.value().energy);
    report.exact = r.value().proven_optimal;
    report.iterations = r.value().nodes_explored;
    return report;
  }
};

class DiscreteGreedySolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "discrete-greedy"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kBiCrit,
                                   kDiscreteKinds,
                                   kAllStructures,
                                   /*exact=*/false,
                                   /*auto_priority=*/50,
                                   "section IV: round-up + reclaim heuristic"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    auto r = bicrit::solve_discrete_greedy(request.dag(), request.mapping(),
                                           request.deadline(), request.speeds());
    if (!r.is_ok()) return r.status();
    return report_from(std::move(r.value().schedule), r.value().energy);
  }
};

class IncrementalApproxSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "incremental-approx"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{
        ProblemKind::kBiCrit,
        speed_bit(SpeedModelKind::kIncremental),
        kAllStructures,
        /*exact=*/false,
        /*auto_priority=*/-1,  // explicit-only, as in the enum facade
        "section IV: (1+delta/fmin)^2 (1+1/K)^2 approximation"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    auto r = bicrit::solve_incremental_approx(request.dag(), request.mapping(),
                                              request.deadline(), request.speeds(),
                                              request.options.approx_K);
    if (!r.is_ok()) return r.status();
    auto report = report_from(std::move(r.value().schedule), r.value().energy);
    report.gap_bound = r.value().ratio_bound;
    return report;
  }
};

class DiscreteChainDpSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "discrete-chain-dp"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kBiCrit,
                                   kDiscreteKinds,
                                   structure_bit(GraphClass::kChain),
                                   /*exact=*/false,  // exact for the rounded instance
                                   /*auto_priority=*/-1,
                                   "section IV: pseudo-polynomial chain DP"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    std::vector<graph::TaskId> order;
    auto weights = chain_weights(request.dag(), "discrete-chain-dp", order);
    if (!weights.is_ok()) return weights.status();
    auto r = bicrit::solve_chain_discrete_dp(weights.value(), request.deadline(),
                                             request.speeds(), request.options.dp_buckets);
    if (!r.is_ok()) return r.status();
    auto report =
        report_from(chain_schedule_to_tasks(order, r.value().schedule), r.value().energy);
    report.iterations = r.value().nodes_explored;
    return report;
  }
};

}  // namespace

void register_builtin_bicrit_solvers(SolverRegistry& registry) {
  (void)registry.add(std::make_unique<ClosedFormChainSolver>());
  (void)registry.add(std::make_unique<ClosedFormForkSolver>());
  (void)registry.add(std::make_unique<ClosedFormSpSolver>());
  (void)registry.add(std::make_unique<ContinuousIpmSolver>());
  (void)registry.add(std::make_unique<VddLpSolver>());
  (void)registry.add(std::make_unique<DiscreteBnbSolver>());
  (void)registry.add(std::make_unique<DiscreteGreedySolver>());
  (void)registry.add(std::make_unique<IncrementalApproxSolver>());
  (void)registry.add(std::make_unique<DiscreteChainDpSolver>());
}

}  // namespace easched::api
