#include "api/digest.hpp"

#include <cstring>

#include "core/problem.hpp"
#include "graph/dag.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "sched/mapping.hpp"

namespace easched::api {
namespace {

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_i64(std::string& out, long long v) {
  append_u64(out, static_cast<std::uint64_t>(v));
}

void append_double(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  append_u64(out, bits);
}

void append_tag(std::string& out, char tag) { out.push_back(tag); }

void append_dag(std::string& out, const graph::Dag& dag) {
  append_tag(out, 'G');
  append_i64(out, dag.num_tasks());
  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) append_double(out, dag.weight(t));
  append_tag(out, 'E');
  append_i64(out, dag.num_edges());
  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) {
    for (graph::TaskId s : dag.successors(t)) {
      append_i64(out, t);
      append_i64(out, s);
    }
  }
}

void append_mapping(std::string& out, const sched::Mapping& mapping) {
  append_tag(out, 'M');
  append_i64(out, mapping.num_processors());
  for (int p = 0; p < mapping.num_processors(); ++p) {
    const auto& order = mapping.order_on(p);
    append_i64(out, static_cast<long long>(order.size()));
    for (graph::TaskId t : order) append_i64(out, t);
  }
}

void append_speeds(std::string& out, const model::SpeedModel& speeds) {
  append_tag(out, 'S');
  append_i64(out, static_cast<long long>(speeds.kind()));
  append_double(out, speeds.fmin());
  append_double(out, speeds.fmax());
  append_double(out, speeds.delta());
  append_i64(out, speeds.num_levels());
  for (double level : speeds.levels()) append_double(out, level);
}

// Reliability statics only: frel is a per-point quantity (the reliability
// sweep varies it while everything else stays fixed), so it lives in the
// point suffix, not the instance bytes.
void append_reliability_statics(std::string& out, const model::ReliabilityModel& rel) {
  append_tag(out, 'R');
  append_double(out, rel.lambda0());
  append_double(out, rel.sensitivity());
  append_double(out, rel.fmin());
  append_double(out, rel.fmax());
}

void append_options(std::string& out, const SolveOptions& opt) {
  // deadline_slack is deliberately absent: it is already folded into the
  // effective deadline, so (D=10, slack=1) and (D=5, slack=2) share a key.
  // start_durations is absent too: it is a warm-start hint the barrier
  // converges through, not an input that changes what problem is solved.
  append_tag(out, 'O');
  append_i64(out, opt.approx_K);
  append_double(out, opt.gap_tolerance);
  append_i64(out, opt.max_nodes);
  append_i64(out, opt.dp_buckets);
  append_i64(out, opt.fork_grid);
  append_i64(out, opt.polish ? 1 : 0);
}

std::uint64_t rotl64(std::uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

}  // namespace

std::string instance_bytes(const SolveRequest& request) {
  std::string out;
  out.reserve(256);
  // The namespace tag leads (when present) so tenants partition the byte
  // space before any structural field. An empty namespace appends nothing,
  // keeping the encoding byte-identical to pre-namespace stores; the 'T'
  // tag never collides with the 'P' every un-namespaced stream starts
  // with, so the two shapes stay prefix-free.
  if (!request.options.cache_namespace.empty()) {
    append_tag(out, 'T');
    append_i64(out, static_cast<long long>(request.options.cache_namespace.size()));
    out += request.options.cache_namespace;
  }
  append_tag(out, 'P');
  append_i64(out, static_cast<long long>(request.kind()));
  append_dag(out, request.dag());
  append_mapping(out, request.mapping());
  append_speeds(out, request.speeds());
  if (request.kind() == ProblemKind::kTriCrit) {
    append_reliability_statics(out, request.tricrit->reliability);
  }
  return out;
}

InstanceDigest digest_bytes(const std::string& bytes) {
  // Two independently-mixed 64-bit lanes over little-endian 8-byte words,
  // zero-padded tail, length folded into the finaliser. Not cryptographic
  // — the interner's exact byte comparison backstops collisions — but
  // well-mixed enough that accidental collisions are ~2^-128 events.
  std::uint64_t lo = 0x9e3779b97f4a7c15ULL;
  std::uint64_t hi = 0xc2b2ae3d27d4eb4fULL;
  // Words are assembled explicitly little-endian so the digest of a given
  // byte string is identical on every host, as the cross-process contract
  // in the header promises.
  const std::size_t n = bytes.size();
  auto load_word = [&](std::size_t at, std::size_t len) {
    std::uint64_t w = 0;
    for (std::size_t b = 0; b < len; ++b) {
      w |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[at + b]))
           << (8 * b);
    }
    return w;
  };
  std::size_t i = 0;
  while (i + 8 <= n) {
    const std::uint64_t w = load_word(i, 8);
    lo = mix64(lo ^ w);
    hi = mix64(hi + rotl64(w, 31));
    i += 8;
  }
  if (i < n) {
    const std::uint64_t w = load_word(i, n - i);
    lo = mix64(lo ^ w);
    hi = mix64(hi + rotl64(w, 31));
  }
  lo = mix64(lo ^ static_cast<std::uint64_t>(n));
  hi = mix64(hi ^ rotl64(static_cast<std::uint64_t>(n), 17) ^ lo);
  return InstanceDigest{hi, lo};
}

InstanceDigest instance_digest(const SolveRequest& request) {
  return digest_bytes(instance_bytes(request));
}

void append_point_bytes(std::string& out, const SolveRequest& request) {
  append_tag(out, 'D');
  append_double(out, request.deadline());
  if (request.kind() == ProblemKind::kTriCrit) {
    append_tag(out, 'F');
    append_double(out, request.tricrit->reliability.frel());
  }
  append_tag(out, 'N');
  append_i64(out, static_cast<long long>(request.solver.size()));
  out += request.solver;
  append_options(out, request.options);
}

}  // namespace easched::api
