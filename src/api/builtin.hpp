#pragma once
// Internal: registration hooks and shared helpers for the built-in
// solver family. Registration is done by plain functions (rather than
// static-initialiser registrars) so static linking cannot drop the
// translation units; SolverRegistry::instance() calls them once.

#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "sched/schedule.hpp"

namespace easched::api {

class SolverRegistry;

void register_builtin_bicrit_solvers(SolverRegistry& registry);
void register_builtin_tricrit_solvers(SolverRegistry& registry);

/// The chain solvers (bicrit discrete DP, tricrit chain family) work on a
/// weight vector in chain order; these helpers convert between that view
/// and the Dag/Schedule world. `order` receives the chain's unique
/// topological order; kUnsupported when the graph is not a chain.
common::Result<std::vector<double>> chain_weights(const graph::Dag& dag,
                                                  std::string_view solver_name,
                                                  std::vector<graph::TaskId>& order);

/// Maps a schedule indexed by chain position back onto task ids.
sched::Schedule chain_schedule_to_tasks(const std::vector<graph::TaskId>& order,
                                        const sched::Schedule& by_position);

}  // namespace easched::api
