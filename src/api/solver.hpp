#pragma once
// easched::api — the registry-driven solver interface.
//
// The paper contributes a *family* of algorithms: closed forms for chains,
// forks and series-parallel graphs, an LP for VDD-HOPPING, branch & bound
// and an approximation scheme for DISCRETE/INCREMENTAL speeds, and the
// tri-criteria heuristics. This layer makes that family a first-class
// concept: every algorithm is a `Solver` with a `Capabilities` descriptor
// (problem kind x speed model x graph structure), registered by name in
// the process-wide `SolverRegistry` (api/registry.hpp). Solvers are
// selected either explicitly by name or automatically by capability
// query, and all of them speak the same `SolveRequest` / `SolveReport`
// vocabulary — so new scenarios plug in without touching any facade.
//
// This layer is the solver *vocabulary*, not the serving surface: callers
// that want caching, persistence and asynchronous jobs construct an
// engine::Engine (engine/engine.hpp) on top of it. The old enum facade in
// core/solvers.hpp has been removed (the header keeps the migration map).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "core/problem.hpp"
#include "model/speed_model.hpp"
#include "sched/schedule.hpp"

namespace easched::api {

/// Which of the paper's two optimisation problems a request carries.
enum class ProblemKind { kBiCrit, kTriCrit };

constexpr const char* to_string(ProblemKind kind) noexcept {
  switch (kind) {
    case ProblemKind::kBiCrit: return "BI-CRIT";
    case ProblemKind::kTriCrit: return "TRI-CRIT";
  }
  return "UNKNOWN";
}

/// Graph-structure classes the specialised algorithms key on, most
/// specific first. `classify_structure` returns the most specific class
/// an instance belongs to.
enum class GraphClass { kChain, kFork, kSeriesParallel, kGeneral };

constexpr const char* to_string(GraphClass c) noexcept {
  switch (c) {
    case GraphClass::kChain: return "chain";
    case GraphClass::kFork: return "fork";
    case GraphClass::kSeriesParallel: return "series-parallel";
    case GraphClass::kGeneral: return "general";
  }
  return "unknown";
}

/// Most specific structure class of `dag` (chain -> fork -> SP -> general).
GraphClass classify_structure(const graph::Dag& dag);

/// Bitmask helpers for Capabilities.
constexpr unsigned speed_bit(model::SpeedModelKind k) noexcept {
  return 1u << static_cast<unsigned>(k);
}
constexpr unsigned structure_bit(GraphClass c) noexcept {
  return 1u << static_cast<unsigned>(c);
}

constexpr unsigned kAllSpeedModels =
    speed_bit(model::SpeedModelKind::kContinuous) |
    speed_bit(model::SpeedModelKind::kDiscrete) |
    speed_bit(model::SpeedModelKind::kVddHopping) |
    speed_bit(model::SpeedModelKind::kIncremental);

constexpr unsigned kAllStructures =
    structure_bit(GraphClass::kChain) | structure_bit(GraphClass::kFork) |
    structure_bit(GraphClass::kSeriesParallel) | structure_bit(GraphClass::kGeneral);

/// Static descriptor of what a solver can handle; the registry's
/// auto-selection queries these (plus the dynamic Solver::accepts hook).
struct Capabilities {
  ProblemKind problem = ProblemKind::kBiCrit;
  unsigned speed_models = 0;  ///< OR of speed_bit()
  unsigned structures = 0;    ///< OR of structure_bit(); an instance matches
                              ///< when the bit of its most specific class is set
  bool exact = false;         ///< provably optimal when it returns OK
  /// Auto-selection rank: among accepting solvers the highest wins;
  /// negative means explicit-by-name only (never auto-selected).
  int auto_priority = -1;
  const char* paper_ref = "";  ///< paper section/claim this implements

  bool supports(model::SpeedModelKind k) const noexcept {
    return (speed_models & speed_bit(k)) != 0;
  }
  bool supports(GraphClass c) const noexcept {
    return (structures & structure_bit(c)) != 0;
  }
};

/// Per-request tuning knobs. Every field has a safe default; solvers read
/// only the knobs that apply to them.
struct SolveOptions {
  int approx_K = 10;            ///< incremental-approx accuracy (>= 1)
  double gap_tolerance = 0.0;   ///< > 0 overrides the barrier gap tolerance
  long long max_nodes = 0;      ///< > 0 overrides B&B node budgets
  int dp_buckets = 20000;       ///< chain discrete-DP time granularity
  int fork_grid = 512;          ///< tri-crit fork search grid
  bool polish = true;           ///< tri-crit heuristics: final continuous re-solve
  /// Deadline-slack policy: the solver sees deadline * deadline_slack
  /// (> 1 relaxes, < 1 tightens; must stay > 0). Lets sweeps and batch
  /// runs scale deadlines without rebuilding problems.
  double deadline_slack = 1.0;
  /// Cross-point warm start: per-task durations of a neighbouring
  /// solution (e.g. the nearest cached schedule of the same instance at a
  /// different deadline), forwarded to the continuous solver's barrier as
  /// its starting point (bicrit::ContinuousOptions::start_durations).
  /// Purely a performance hint — the barrier converges to the same
  /// optimum to solver tolerance — so it is deliberately *excluded* from
  /// request fingerprints and cache keys (api/digest.cpp) like
  /// deadline_slack: two requests differing only in the hint are the same
  /// problem. Solvers without an iterative core ignore it.
  std::vector<double> start_durations;
  /// Cache/store namespace tag. No solver reads it, but it is folded into
  /// the *instance* bytes (api/digest.cpp) when non-empty, so two requests
  /// with different namespaces never share a cache entry, a store blob or
  /// a warm-start neighbour. The serving tier sets this to the tenant id —
  /// per-tenant isolation falls out of the existing digest identity with
  /// no second key dimension. Empty (the default) leaves every byte stream
  /// exactly as before, so existing stores stay valid.
  std::string cache_namespace;
};

/// A solve request: one problem (BI-CRIT or TRI-CRIT), an optional solver
/// name (empty = capability-based auto-selection) and options. Non-owning:
/// the problem must outlive the request.
struct SolveRequest {
  explicit SolveRequest(const core::BiCritProblem& problem, std::string solver_name = {},
                        SolveOptions opts = {})
      : bicrit(&problem), solver(std::move(solver_name)), options(opts) {}
  explicit SolveRequest(const core::TriCritProblem& problem, std::string solver_name = {},
                        SolveOptions opts = {})
      : tricrit(&problem), solver(std::move(solver_name)), options(opts) {}

  const core::BiCritProblem* bicrit = nullptr;
  const core::TriCritProblem* tricrit = nullptr;
  std::string solver;  ///< registry name; empty = auto-select
  SolveOptions options;

  ProblemKind kind() const noexcept {
    return bicrit != nullptr ? ProblemKind::kBiCrit : ProblemKind::kTriCrit;
  }
  const graph::Dag& dag() const { return bicrit != nullptr ? bicrit->dag : tricrit->dag; }
  const sched::Mapping& mapping() const {
    return bicrit != nullptr ? bicrit->mapping : tricrit->mapping;
  }
  const model::SpeedModel& speeds() const {
    return bicrit != nullptr ? bicrit->speeds : tricrit->speeds;
  }
  /// Effective deadline after the slack policy.
  double deadline() const noexcept {
    return (bicrit != nullptr ? bicrit->deadline : tricrit->deadline) *
           options.deadline_slack;
  }

  /// Structure class of the instance graph. Computed once and cached —
  /// auto-selection probes every registered solver, and SP recognition
  /// is not free. A request is meant for a single thread (batch workers
  /// each build their own), so the mutable cache needs no lock.
  GraphClass structure() const {
    if (!structure_cache_) structure_cache_ = classify_structure(dag());
    return *structure_cache_;
  }

  /// Options sanity + problem.validate() — every solve path starts here.
  /// A successful validation is cached so the api::solve entry point and
  /// Solver::run (which validates for direct callers) don't pay the
  /// structural checks twice.
  common::Status validate() const;

 private:
  mutable std::optional<GraphClass> structure_cache_;
  mutable bool validated_ = false;
};

/// Uniform result of any solver: the schedule plus telemetry.
struct SolveReport {
  sched::Schedule schedule{0};
  double energy = 0.0;
  double makespan = 0.0;      ///< worst-case makespan of the schedule
  std::string solver;         ///< registry name of the concrete solver
  ProblemKind problem = ProblemKind::kBiCrit;
  double wall_ms = 0.0;       ///< wall-clock time spent in the solver
  long long iterations = 0;   ///< Newton steps / simplex or B&B nodes / subsets
  int re_executed = 0;        ///< TRI-CRIT: tasks executed twice
  bool exact = false;         ///< result certified optimal by the solver
  double gap_bound = 0.0;     ///< certified optimality gap/ratio bound (0 = none)
};

/// One algorithm of the family. Implementations override `do_run` (and
/// optionally `accepts` for dynamic applicability conditions such as
/// processor counts or search-space size); `run` is the template method
/// that validates the request and stamps telemetry.
class Solver {
 public:
  virtual ~Solver() = default;

  virtual std::string_view name() const noexcept = 0;
  virtual const Capabilities& capabilities() const noexcept = 0;

  /// May auto-selection route `request` here? Default: problem kind,
  /// speed-model bit and structure bit all match and auto_priority >= 0.
  /// Explicit by-name runs bypass this (a solver may still be broader
  /// than its auto-selection profile, e.g. closed-form-fork without the
  /// one-processor-per-branch guarantee).
  virtual bool accepts(const SolveRequest& request) const;

  /// Validates the request, runs the algorithm, and fills the telemetry
  /// fields (solver name, wall time, makespan) of the report.
  common::Result<SolveReport> run(const SolveRequest& request) const;

 protected:
  virtual common::Result<SolveReport> do_run(const SolveRequest& request) const = 0;
};

}  // namespace easched::api
