// TRI-CRIT members of the solver family. The old enum facade had no auto
// mode for TRI-CRIT; the registry adds one: chain instances route to the
// paper's chain strategy, forks (with a processor per branch) to the
// polynomial fork algorithm, everything else to BEST-OF — and VDD-HOPPING
// TRI-CRIT instances, which the facade could not express at all, route to
// the two-level adaptation of the continuous BEST-OF solution (claim C10).

#include <memory>
#include <string>
#include <vector>

#include "api/builtin.hpp"
#include "api/registry.hpp"
#include "graph/analysis.hpp"
#include "tricrit/chain.hpp"
#include "tricrit/fork.hpp"
#include "tricrit/heuristics.hpp"
#include "tricrit/vdd_adapt.hpp"

namespace easched::api {
namespace {

using model::SpeedModelKind;

SolveReport report_from(tricrit::TriCritSolution solution) {
  SolveReport report;
  report.schedule = std::move(solution.schedule);
  report.energy = solution.energy;
  report.re_executed = solution.re_executed;
  return report;
}

/// Shared machinery for the chain-order solvers: extract weights in the
/// chain's unique topological order, run, and map the chain-position
/// schedule back to task ids.
class ChainSolverBase : public Solver {
 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const final {
    std::vector<graph::TaskId> order;
    auto weights = chain_weights(request.dag(), name(), order);
    if (!weights.is_ok()) return weights.status();

    auto r = run_chain(weights.value(), request);
    if (!r.is_ok()) return r.status();

    SolveReport report;
    report.schedule = chain_schedule_to_tasks(order, r.value().solution.schedule);
    report.energy = r.value().solution.energy;
    report.re_executed = r.value().solution.re_executed;
    report.iterations = r.value().subsets_explored;
    report.exact = is_exact();
    return report;
  }

  virtual common::Result<tricrit::ChainSolution> run_chain(
      const std::vector<double>& weights, const SolveRequest& request) const = 0;
  virtual bool is_exact() const noexcept { return false; }
};

class ChainExactSolver final : public ChainSolverBase {
 public:
  std::string_view name() const noexcept override { return "chain-exact"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kTriCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   structure_bit(GraphClass::kChain),
                                   /*exact=*/true,
                                   /*auto_priority=*/-1,  // 2^n oracle, explicit-only
                                   "claim C3: chain optimum (subset enumeration)"};
    return caps;
  }

 protected:
  common::Result<tricrit::ChainSolution> run_chain(
      const std::vector<double>& weights, const SolveRequest& request) const override {
    return tricrit::solve_chain_exact(weights, request.deadline(),
                                      request.tricrit->reliability, request.speeds());
  }
  bool is_exact() const noexcept override { return true; }
};

class ChainGreedySolver final : public ChainSolverBase {
 public:
  std::string_view name() const noexcept override { return "chain-greedy"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kTriCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   structure_bit(GraphClass::kChain),
                                   /*exact=*/false,
                                   /*auto_priority=*/100,
                                   "claim C4: the paper's chain strategy"};
    return caps;
  }

 protected:
  common::Result<tricrit::ChainSolution> run_chain(
      const std::vector<double>& weights, const SolveRequest& request) const override {
    return tricrit::solve_chain_greedy(weights, request.deadline(),
                                       request.tricrit->reliability, request.speeds());
  }
};

class ChainBnbSolver final : public ChainSolverBase {
 public:
  std::string_view name() const noexcept override { return "chain-bnb"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kTriCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   structure_bit(GraphClass::kChain),
                                   /*exact=*/true,
                                   /*auto_priority=*/-1,
                                   "claim C3: chain optimum (branch & bound)"};
    return caps;
  }

 protected:
  common::Result<tricrit::ChainSolution> run_chain(
      const std::vector<double>& weights, const SolveRequest& request) const override {
    const long long max_nodes =
        request.options.max_nodes > 0 ? request.options.max_nodes : 5'000'000;
    return tricrit::solve_chain_bnb(weights, request.deadline(),
                                    request.tricrit->reliability, request.speeds(),
                                    max_nodes);
  }
  bool is_exact() const noexcept override { return true; }
};

class ForkPolySolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "fork-poly"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kTriCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   structure_bit(GraphClass::kFork),
                                   /*exact=*/false,  // exact up to grid resolution
                                   /*auto_priority=*/90,
                                   "claim C5: polynomial fork algorithm"};
    return caps;
  }

  bool accepts(const SolveRequest& request) const override {
    // The fork algorithm assumes every child on its own processor.
    return Solver::accepts(request) &&
           request.mapping().num_processors() >= request.dag().num_tasks() - 1;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    if (!graph::is_fork(request.dag())) {
      return common::Status::unsupported("fork-poly needs a fork graph");
    }
    auto r = tricrit::solve_fork_tricrit(request.dag(), request.deadline(),
                                         request.tricrit->reliability, request.speeds(),
                                         request.options.fork_grid);
    if (!r.is_ok()) return r.status();
    return report_from(std::move(r.value().solution));
  }
};

/// The two heuristic families and their BEST-OF combination share a
/// do_run; only the inner call differs.
enum class HeuristicKind { kUniform, kSlack, kBestOf };

template <HeuristicKind kind>
class HeuristicSolver final : public Solver {
 public:
  std::string_view name() const noexcept override {
    switch (kind) {
      case HeuristicKind::kUniform: return "heuristic-A";
      case HeuristicKind::kSlack: return "heuristic-B";
      case HeuristicKind::kBestOf: return "best-of";
    }
    return "heuristic";
  }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kTriCrit,
                                   speed_bit(SpeedModelKind::kContinuous),
                                   kAllStructures,
                                   /*exact=*/false,
                                   /*auto_priority=*/kind == HeuristicKind::kBestOf ? 50
                                                                                    : 10,
                                   "claim C6: complementary heuristic families"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    tricrit::HeuristicOptions opts;
    opts.polish = request.options.polish;
    const auto& p = *request.tricrit;
    auto r = kind == HeuristicKind::kUniform
                 ? tricrit::heuristic_uniform_reexec(p.dag, p.mapping, request.deadline(),
                                                     p.reliability, p.speeds, opts)
                 : kind == HeuristicKind::kSlack
                       ? tricrit::heuristic_slack_reexec(p.dag, p.mapping,
                                                         request.deadline(),
                                                         p.reliability, p.speeds, opts)
                       : tricrit::heuristic_best_of(p.dag, p.mapping, request.deadline(),
                                                    p.reliability, p.speeds, opts);
    if (!r.is_ok()) return r.status();
    return report_from(std::move(r.value()));
  }
};

/// VDD-HOPPING TRI-CRIT (claim C10): solve the continuous relaxation with
/// BEST-OF, then convert every execution into a reliability-preserving
/// two-level mix. A scenario the enum facade could not express.
class VddAdaptSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "vdd-adapt"; }
  const Capabilities& capabilities() const noexcept override {
    static const Capabilities caps{ProblemKind::kTriCrit,
                                   speed_bit(SpeedModelKind::kVddHopping),
                                   kAllStructures,
                                   /*exact=*/false,
                                   /*auto_priority=*/50,
                                   "claim C10: continuous heuristic -> VDD mixes"};
    return caps;
  }

 protected:
  common::Result<SolveReport> do_run(const SolveRequest& request) const override {
    const auto& p = *request.tricrit;
    const auto continuous =
        model::SpeedModel::continuous(p.speeds.fmin(), p.speeds.fmax());
    tricrit::HeuristicOptions opts;
    opts.polish = request.options.polish;
    auto cont = tricrit::heuristic_best_of(p.dag, p.mapping, request.deadline(),
                                           p.reliability, continuous, opts);
    if (!cont.is_ok()) return cont.status();
    auto adapted = tricrit::adapt_to_vdd(p.dag, cont.value(), p.reliability, p.speeds);
    if (!adapted.is_ok()) return adapted.status();
    auto report = report_from(std::move(adapted.value().solution));
    report.iterations = adapted.value().tightened_tasks;
    report.gap_bound = adapted.value().energy_loss_ratio;
    return report;
  }
};

}  // namespace

void register_builtin_tricrit_solvers(SolverRegistry& registry) {
  (void)registry.add(std::make_unique<ChainExactSolver>());
  (void)registry.add(std::make_unique<ChainGreedySolver>());
  (void)registry.add(std::make_unique<ChainBnbSolver>());
  (void)registry.add(std::make_unique<ForkPolySolver>());
  (void)registry.add(std::make_unique<HeuristicSolver<HeuristicKind::kUniform>>());
  (void)registry.add(std::make_unique<HeuristicSolver<HeuristicKind::kSlack>>());
  (void)registry.add(std::make_unique<HeuristicSolver<HeuristicKind::kBestOf>>());
  (void)registry.add(std::make_unique<VddAdaptSolver>());
}

}  // namespace easched::api
