#pragma once
// The process-wide solver registry and the `solve()` entry points.
//
// Every algorithm of the paper self-registers here under a stable name
// (see api/builtin_bicrit.cpp and api/builtin_tricrit.cpp); downstream
// code looks solvers up by name or lets `select()` route an instance by
// capability query. Custom solvers can be added at runtime via `add()`,
// which is how new scenarios plug in without editing any facade.
//
// DEPRECATION: `api::solve` (and `api::solve_batch`) are now the *thin
// internals* under the engine façade — engine::Engine routes every query
// through them while owning the cache, store and worker pool callers
// previously wired by hand. Direct calls keep working for one release;
// new code should construct an Engine (engine/engine.hpp).

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/solver.hpp"
#include "common/mutex.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"

namespace easched::api {

class SolverRegistry {
 public:
  /// The process-wide registry, with every built-in solver registered.
  static SolverRegistry& instance();

  SolverRegistry() = default;
  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

  /// Registers a solver; kInvalidArgument on a duplicate name.
  common::Status add(std::unique_ptr<Solver> solver);

  /// Solver by exact name; nullptr when unknown. Registered solvers are
  /// immutable, never removed, and live as long as the registry, so the
  /// pointer stays valid across later add() calls.
  const Solver* find(std::string_view name) const;

  /// Registered names (optionally one problem kind only), registration order.
  std::vector<std::string> names(std::optional<ProblemKind> kind = std::nullopt) const;

  /// Capability-based routing: among solvers whose `accepts(request)` is
  /// true, the one with the highest auto_priority (ties: registration
  /// order). kUnsupported when no registered solver accepts the instance.
  common::Result<const Solver*> select(const SolveRequest& request) const;

  std::size_t size() const;

 private:
  /// add() may race with solve_batch workers iterating the registry;
  /// all access to solvers_ is serialised (solver runs happen outside
  /// the lock, so contention is a few pointer reads per solve). The
  /// *elements* are immutable once registered and never removed, which
  /// is why find()/select() may hand out raw Solver pointers.
  mutable common::Mutex mutex_;
  std::vector<std::unique_ptr<Solver>> solvers_ EASCHED_GUARDED_BY(mutex_);
};

/// Solves `request`: validation first, then explicit lookup (kNotFound for
/// unknown names) or capability auto-selection, then the solver run.
common::Result<SolveReport> solve(const SolveRequest& request);

/// Auto-selected solve of a BI-CRIT instance.
common::Result<SolveReport> solve(const core::BiCritProblem& problem,
                                  const SolveOptions& options = {});
/// Solve with an explicit registry solver name.
common::Result<SolveReport> solve(const core::BiCritProblem& problem,
                                  std::string_view solver,
                                  const SolveOptions& options = {});

/// Auto-selected solve of a TRI-CRIT instance.
common::Result<SolveReport> solve(const core::TriCritProblem& problem,
                                  const SolveOptions& options = {});
common::Result<SolveReport> solve(const core::TriCritProblem& problem,
                                  std::string_view solver,
                                  const SolveOptions& options = {});

}  // namespace easched::api
