#include "sched/schedule.hpp"

#include "graph/analysis.hpp"

namespace easched::sched {

double Execution::duration(double weight) const {
  if (is_vdd()) return model::vdd_time(profile);
  if (weight == 0.0) return 0.0;
  EASCHED_CHECK_MSG(speed > 0.0, "constant-speed execution needs a positive speed");
  return weight / speed;
}

double Execution::energy(double weight) const {
  if (is_vdd()) return model::vdd_energy(profile);
  return model::execution_energy(weight, speed);
}

double Execution::failure_prob(double weight, const model::ReliabilityModel& rel) const {
  if (is_vdd()) return rel.mixed_failure(profile);
  return rel.failure_prob(weight, speed);
}

Schedule::Schedule(int num_tasks) {
  EASCHED_CHECK(num_tasks >= 0);
  decisions_.resize(static_cast<std::size_t>(num_tasks));
}

Schedule Schedule::uniform(const graph::Dag& dag, double speed) {
  Schedule s(dag.num_tasks());
  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) s.at(t) = TaskDecision::single(speed);
  return s;
}

double Schedule::task_duration(const graph::Dag& dag, graph::TaskId t) const {
  double d = 0.0;
  for (const auto& e : at(t).executions) d += e.duration(dag.weight(t));
  return d;
}

std::vector<double> Schedule::durations(const graph::Dag& dag) const {
  std::vector<double> d(static_cast<std::size_t>(dag.num_tasks()));
  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) {
    d[static_cast<std::size_t>(t)] = task_duration(dag, t);
  }
  return d;
}

double Schedule::total_energy(const graph::Dag& dag) const {
  double e = 0.0;
  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) {
    for (const auto& ex : at(t).executions) e += ex.energy(dag.weight(t));
  }
  return e;
}

int Schedule::num_re_executed() const noexcept {
  int k = 0;
  for (const auto& d : decisions_) k += d.executions.size() == 2 ? 1 : 0;
  return k;
}

double makespan(const graph::Dag& dag, const Mapping& mapping, const Schedule& schedule) {
  const graph::Dag aug = mapping.augmented_graph(dag);
  const auto durations = schedule.durations(dag);
  return graph::time_analysis(aug, durations, /*horizon=*/0.0).makespan;
}

}  // namespace easched::sched
