#pragma once
// Timeline (Gantt) construction and export for a mapped schedule.
//
// Places every execution at its ASAP start time on the augmented graph
// (DAG edges + processor orders), with the 1-2 executions of a task
// back-to-back — the worst-case layout whose makespan the optimisation
// problems constrain. Used by examples for human inspection and by tests
// as an independent makespan cross-check.

#include <iosfwd>
#include <vector>

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "sched/mapping.hpp"
#include "sched/schedule.hpp"

namespace easched::sched {

/// One execution instance on the timeline.
struct GanttEntry {
  graph::TaskId task = -1;
  int execution = 0;  ///< 0 = first attempt, 1 = re-execution
  int processor = 0;
  double start = 0.0;
  double finish = 0.0;
};

/// ASAP timeline of the schedule; entries sorted by (processor, start).
std::vector<GanttEntry> build_timeline(const graph::Dag& dag, const Mapping& mapping,
                                       const Schedule& schedule);

/// Largest finish time of the timeline (equals sched::makespan).
double timeline_makespan(const std::vector<GanttEntry>& timeline);

/// Human-readable per-processor rows:
///   P0 | load[0.00,2.26] fft[2.26,8.30] ...
void write_gantt(std::ostream& os, const graph::Dag& dag, const Mapping& mapping,
                 const Schedule& schedule);

/// CSV: task,name,execution,processor,start,finish,speed
void write_timeline_csv(std::ostream& os, const graph::Dag& dag, const Mapping& mapping,
                        const Schedule& schedule);

}  // namespace easched::sched
