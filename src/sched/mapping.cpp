#include "sched/mapping.hpp"

#include "graph/analysis.hpp"

namespace easched::sched {

Mapping::Mapping(int num_processors, int num_tasks) {
  EASCHED_CHECK_MSG(num_processors >= 1, "need at least one processor");
  EASCHED_CHECK_MSG(num_tasks >= 0, "negative task count");
  order_.resize(static_cast<std::size_t>(num_processors));
  proc_of_.assign(static_cast<std::size_t>(num_tasks), -1);
}

void Mapping::assign(TaskId t, int processor) {
  EASCHED_CHECK_MSG(t >= 0 && t < num_tasks(), "task id out of range");
  EASCHED_CHECK_MSG(processor >= 0 && processor < num_processors(), "processor out of range");
  EASCHED_CHECK_MSG(proc_of_[static_cast<std::size_t>(t)] == -1, "task assigned twice");
  proc_of_[static_cast<std::size_t>(t)] = processor;
  order_[static_cast<std::size_t>(processor)].push_back(t);
}

common::Status Mapping::validate(const Dag& dag) const {
  if (dag.num_tasks() != num_tasks()) {
    return common::Status::invalid("mapping sized for a different task count");
  }
  for (TaskId t = 0; t < num_tasks(); ++t) {
    if (proc_of_[static_cast<std::size_t>(t)] < 0) {
      return common::Status::invalid("task " + std::to_string(t) + " is unassigned");
    }
  }
  if (!graph::is_acyclic(augmented_graph(dag))) {
    return common::Status::invalid("processor orders contradict the precedence constraints");
  }
  return common::Status::ok();
}

Dag Mapping::augmented_graph(const Dag& dag) const {
  Dag aug;
  for (TaskId t = 0; t < dag.num_tasks(); ++t) aug.add_task(dag.weight(t), dag.name(t));
  for (TaskId u = 0; u < dag.num_tasks(); ++u) {
    for (TaskId v : dag.successors(u)) aug.add_edge(u, v);
  }
  for (const auto& order : order_) {
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      if (order[i] != order[i + 1]) aug.add_edge(order[i], order[i + 1]);
    }
  }
  return aug;
}

Mapping Mapping::single_processor(const Dag& dag, const std::vector<TaskId>& order) {
  EASCHED_CHECK_MSG(static_cast<int>(order.size()) == dag.num_tasks(),
                    "order must cover every task");
  Mapping m(1, dag.num_tasks());
  for (TaskId t : order) m.assign(t, 0);
  return m;
}

Mapping Mapping::one_task_per_processor(const Dag& dag) {
  Mapping m(std::max(1, dag.num_tasks()), dag.num_tasks());
  for (TaskId t = 0; t < dag.num_tasks(); ++t) m.assign(t, t);
  return m;
}

}  // namespace easched::sched
