#pragma once
// Schedule: the decision object of both optimization problems.
//
// "The schedule consists in choosing the number of executions of each task
//  (in case of re-execution), and the speeds at which these executions
//  will happen." (section II)
//
// Every task gets 1 or 2 Executions; an Execution runs either at one
// constant speed or as a VDD-hopping profile. Durations/energies follow
// the paper's worst-case convention: both executions of a re-executed task
// occupy time and consume energy.

#include <vector>

#include "common/status.hpp"
#include "graph/dag.hpp"
#include "model/energy.hpp"
#include "model/reliability.hpp"
#include "sched/mapping.hpp"

namespace easched::sched {

/// One execution of a task: constant speed, or a VDD-hopping profile.
struct Execution {
  double speed = 0.0;                         ///< used when profile is empty
  std::vector<model::SpeedInterval> profile;  ///< non-empty => VDD-hopping

  bool is_vdd() const noexcept { return !profile.empty(); }

  static Execution at_speed(double f) { return Execution{f, {}}; }
  static Execution vdd(std::vector<model::SpeedInterval> prof) {
    return Execution{0.0, std::move(prof)};
  }

  /// Wall-clock duration for a task of the given weight.
  double duration(double weight) const;
  /// Energy consumed (f^3 * t accumulated over the profile).
  double energy(double weight) const;
  /// Failure probability under the reliability model.
  double failure_prob(double weight, const model::ReliabilityModel& rel) const;
};

/// The 1 or 2 executions chosen for one task.
struct TaskDecision {
  std::vector<Execution> executions;

  bool re_executed() const noexcept { return executions.size() == 2; }
  static TaskDecision single(double f) { return TaskDecision{{Execution::at_speed(f)}}; }
  static TaskDecision re_exec(double f1, double f2) {
    return TaskDecision{{Execution::at_speed(f1), Execution::at_speed(f2)}};
  }
};

/// Full schedule: one TaskDecision per task.
class Schedule {
 public:
  explicit Schedule(int num_tasks);

  int num_tasks() const noexcept { return static_cast<int>(decisions_.size()); }
  TaskDecision& at(graph::TaskId t) { return decisions_.at(static_cast<std::size_t>(t)); }
  const TaskDecision& at(graph::TaskId t) const {
    return decisions_.at(static_cast<std::size_t>(t));
  }

  /// Every task once, at the same constant speed.
  static Schedule uniform(const graph::Dag& dag, double speed);

  /// Total worst-case duration of a task (sum over its executions).
  double task_duration(const graph::Dag& dag, graph::TaskId t) const;
  /// Per-task durations vector (for graph::time_analysis).
  std::vector<double> durations(const graph::Dag& dag) const;
  /// Total energy  E = sum_i sum_exec energy  (worst case: all executions).
  double total_energy(const graph::Dag& dag) const;
  /// Number of re-executed tasks.
  int num_re_executed() const noexcept;

 private:
  std::vector<TaskDecision> decisions_;
};

/// Worst-case makespan of the schedule under the mapping: longest path of
/// the augmented graph with the schedule's task durations.
double makespan(const graph::Dag& dag, const Mapping& mapping, const Schedule& schedule);

}  // namespace easched::sched
