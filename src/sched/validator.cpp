#include "sched/validator.hpp"

#include <cmath>
#include <string>

namespace easched::sched {

namespace {

common::Status fail(const std::string& what) { return common::Status::infeasible(what); }

}  // namespace

common::Status validate_schedule(const graph::Dag& dag, const Mapping& mapping,
                                 const Schedule& schedule, const ValidationInput& input) {
  EASCHED_CHECK_MSG(input.speed_model != nullptr, "validator needs a speed model");
  const auto& sm = *input.speed_model;
  const double tol = input.feasibility_tolerance;

  if (schedule.num_tasks() != dag.num_tasks()) {
    return fail("schedule sized for a different task count");
  }
  if (auto st = mapping.validate(dag); !st.is_ok()) return st;

  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) {
    const auto& decision = schedule.at(t);
    const double w = dag.weight(t);
    const std::string tag = "task " + std::to_string(t);
    if (decision.executions.empty() || decision.executions.size() > 2) {
      return fail(tag + ": needs 1 or 2 executions, has " +
                  std::to_string(decision.executions.size()));
    }
    if (decision.executions.size() == 2 && !input.allow_re_execution) {
      return fail(tag + ": re-execution not allowed in this problem");
    }
    for (const auto& exec : decision.executions) {
      if (exec.is_vdd()) {
        if (sm.kind() != model::SpeedModelKind::kVddHopping) {
          return fail(tag + ": VDD profile under a non-VDD speed model");
        }
        for (const auto& seg : exec.profile) {
          if (seg.time < -tol) return fail(tag + ": negative VDD interval");
          if (seg.time > 0.0 && !sm.admissible(seg.speed, 1e-9)) {
            return fail(tag + ": VDD speed " + std::to_string(seg.speed) + " not a level");
          }
        }
        const double work = model::vdd_work(exec.profile);
        if (std::fabs(work - w) > tol * (1.0 + w)) {
          return fail(tag + ": VDD profile processes " + std::to_string(work) +
                      " work instead of " + std::to_string(w));
        }
      } else {
        if (w > 0.0 && !(exec.speed > 0.0)) return fail(tag + ": non-positive speed");
        if (w > 0.0 && !sm.admissible(exec.speed, 1e-9)) {
          return fail(tag + ": speed " + std::to_string(exec.speed) +
                      " not admissible under " + model::to_string(sm.kind()));
        }
      }
    }
  }

  const double ms = makespan(dag, mapping, schedule);
  if (ms > input.deadline * (1.0 + tol) + tol) {
    return fail("makespan " + std::to_string(ms) + " exceeds deadline " +
                std::to_string(input.deadline));
  }

  if (input.reliability != nullptr) {
    const auto& rel = *input.reliability;
    for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) {
      const auto& decision = schedule.at(t);
      const double w = dag.weight(t);
      if (w == 0.0) continue;
      const double threshold = rel.threshold_failure(w);
      double combined = 1.0;
      for (const auto& exec : decision.executions) {
        combined *= exec.failure_prob(w, rel);
      }
      // Single execution: combined == lambda(f); pair: product of both.
      if (combined > threshold * (1.0 + 1e-6) + 1e-300) {
        return fail("task " + std::to_string(t) + ": reliability constraint violated (" +
                    std::to_string(combined) + " > " + std::to_string(threshold) + ")");
      }
    }
  }
  return common::Status::ok();
}

}  // namespace easched::sched
