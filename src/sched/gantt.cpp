#include "sched/gantt.hpp"

#include <algorithm>
#include <ostream>

#include "graph/analysis.hpp"

namespace easched::sched {

std::vector<GanttEntry> build_timeline(const graph::Dag& dag, const Mapping& mapping,
                                       const Schedule& schedule) {
  EASCHED_CHECK(schedule.num_tasks() == dag.num_tasks());
  const graph::Dag aug = mapping.augmented_graph(dag);
  const auto durations = schedule.durations(dag);
  const auto ta = graph::time_analysis(aug, durations, 0.0);

  std::vector<GanttEntry> out;
  for (graph::TaskId t = 0; t < dag.num_tasks(); ++t) {
    double cursor = ta.asap[static_cast<std::size_t>(t)];
    const auto& execs = schedule.at(t).executions;
    for (std::size_t e = 0; e < execs.size(); ++e) {
      GanttEntry entry;
      entry.task = t;
      entry.execution = static_cast<int>(e);
      entry.processor = mapping.processor_of(t);
      entry.start = cursor;
      cursor += execs[e].duration(dag.weight(t));
      entry.finish = cursor;
      out.push_back(entry);
    }
  }
  std::sort(out.begin(), out.end(), [](const GanttEntry& a, const GanttEntry& b) {
    if (a.processor != b.processor) return a.processor < b.processor;
    if (a.start != b.start) return a.start < b.start;
    return a.task < b.task;
  });
  return out;
}

double timeline_makespan(const std::vector<GanttEntry>& timeline) {
  double makespan = 0.0;
  for (const auto& e : timeline) makespan = std::max(makespan, e.finish);
  return makespan;
}

void write_gantt(std::ostream& os, const graph::Dag& dag, const Mapping& mapping,
                 const Schedule& schedule) {
  const auto timeline = build_timeline(dag, mapping, schedule);
  os.setf(std::ios::fixed);
  const auto old_precision = os.precision(2);
  int current = -1;
  for (const auto& entry : timeline) {
    if (entry.processor != current) {
      if (current >= 0) os << '\n';
      current = entry.processor;
      os << 'P' << current << " |";
    }
    os << ' ' << dag.name(entry.task);
    if (entry.execution > 0) os << "(re)";
    os << '[' << entry.start << ',' << entry.finish << ']';
  }
  if (current >= 0) os << '\n';
  os << "makespan: " << timeline_makespan(timeline) << '\n';
  os.precision(old_precision);
  os.unsetf(std::ios::fixed);
}

void write_timeline_csv(std::ostream& os, const graph::Dag& dag, const Mapping& mapping,
                        const Schedule& schedule) {
  os << "task,name,execution,processor,start,finish,speed\n";
  for (const auto& entry : build_timeline(dag, mapping, schedule)) {
    const auto& exec = schedule.at(entry.task).executions[static_cast<std::size_t>(
        entry.execution)];
    // VDD executions report their work-averaged speed.
    double speed = exec.speed;
    if (exec.is_vdd()) {
      const double time = model::vdd_time(exec.profile);
      speed = time > 0.0 ? model::vdd_work(exec.profile) / time : 0.0;
    }
    os << entry.task << ',' << dag.name(entry.task) << ',' << entry.execution << ','
       << entry.processor << ',' << entry.start << ',' << entry.finish << ',' << speed
       << '\n';
  }
}

}  // namespace easched::sched
