#pragma once
// Mapping: the pre-allocation of tasks to processors the paper assumes.
//
// "Because the problem of finding a schedule that matches the makespan
//  constraint is NP-complete, we consider that the DAG is already mapped
//  on the processors ... say by an ordered list of tasks to execute on
//  each processor. While it is not possible to change the allocation of a
//  task, it is possible to change its speed." (sections I-II)
//
// A Mapping is exactly that ordered list per processor. The energy solvers
// operate on the *augmented graph*: DAG edges plus the
// consecutive-on-processor edges induced by the per-processor orders.

#include <vector>

#include "common/status.hpp"
#include "graph/dag.hpp"

namespace easched::sched {

using graph::Dag;
using graph::TaskId;

class Mapping {
 public:
  /// Empty mapping over `num_processors` processors for `num_tasks` tasks.
  Mapping(int num_processors, int num_tasks);

  /// Appends task t to the execution order of `processor`.
  void assign(TaskId t, int processor);

  int num_processors() const noexcept { return static_cast<int>(order_.size()); }
  int num_tasks() const noexcept { return static_cast<int>(proc_of_.size()); }

  /// Processor of a task; -1 if unassigned.
  int processor_of(TaskId t) const { return proc_of_.at(static_cast<std::size_t>(t)); }

  /// Ordered task list of one processor.
  const std::vector<TaskId>& order_on(int processor) const {
    return order_.at(static_cast<std::size_t>(processor));
  }

  /// Checks: every task assigned exactly once, and the union of DAG edges
  /// and processor-order edges is acyclic (a mapping whose orders
  /// contradict the precedence constraints is invalid).
  common::Status validate(const Dag& dag) const;

  /// The augmented precedence graph: `dag` plus an edge between
  /// consecutive tasks of every processor order. Weights are preserved.
  Dag augmented_graph(const Dag& dag) const;

  /// Everything on one processor, in the order given (chain semantics).
  static Mapping single_processor(const Dag& dag, const std::vector<TaskId>& order);

  /// Each task on its own processor (fully parallel; used for closed-form
  /// structures where the graph itself is the only constraint).
  static Mapping one_task_per_processor(const Dag& dag);

 private:
  std::vector<std::vector<TaskId>> order_;
  std::vector<int> proc_of_;
};

}  // namespace easched::sched
