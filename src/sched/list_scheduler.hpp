#pragma once
// List scheduling: produces the Mapping that the energy solvers take as
// input. The paper couples its heuristics "with a critical-path
// list-scheduling algorithm" and asks (future work, section V) whether
// that classical policy remains the right one when energy and reliability
// enter the picture — bench_mapping_ablation reproduces that question by
// sweeping the policies below.

#include "common/rng.hpp"
#include "graph/dag.hpp"
#include "sched/mapping.hpp"

namespace easched::sched {

enum class PriorityPolicy {
  kCriticalPath,   ///< bottom-level (longest downstream path incl. self) — the classic
  kHeaviestFirst,  ///< largest weight among ready tasks
  kRoundRobin,     ///< FIFO ready order, processors cycled
  kRandom,         ///< uniformly random ready task (needs rng)
};

constexpr const char* to_string(PriorityPolicy p) noexcept {
  switch (p) {
    case PriorityPolicy::kCriticalPath: return "critical-path";
    case PriorityPolicy::kHeaviestFirst: return "heaviest-first";
    case PriorityPolicy::kRoundRobin: return "round-robin";
    case PriorityPolicy::kRandom: return "random";
  }
  return "unknown";
}

/// Maps `dag` onto `num_processors` processors.
///
/// Greedy list scheduling with unit-speed durations (d_i = w_i): repeatedly
/// pick the highest-priority ready task and place it on the processor with
/// the earliest available slot (except kRoundRobin, which cycles). The
/// returned mapping is always valid w.r.t. the dag.
Mapping list_schedule(const graph::Dag& dag, int num_processors, PriorityPolicy policy,
                      common::Rng* rng = nullptr);

}  // namespace easched::sched
