#pragma once
// Schedule validator: the single arbiter of feasibility used by every
// solver test and bench. A schedule is feasible iff
//   (1) every task has 1 or 2 executions with positive speeds,
//   (2) every execution is admissible under the speed model
//       (constant speed in the set/interval; VDD profiles use set levels
//        and process exactly the task's weight),
//   (3) the worst-case makespan (both executions of re-executed tasks
//       scheduled, paper's convention) is within the deadline,
//   (4) when a reliability model is given, every task meets
//       R_i >= R_i(frel)  —  single: lambda(f) <= lambda(frel);
//       re-exec: lambda(f1)*lambda(f2) <= lambda(frel),
//   (5) re-execution is only used when a reliability model is present
//       (it never helps BI-CRIT).

#include <optional>

#include "common/status.hpp"
#include "model/reliability.hpp"
#include "model/speed_model.hpp"
#include "sched/schedule.hpp"

namespace easched::sched {

struct ValidationInput {
  const model::SpeedModel* speed_model = nullptr;          ///< required
  const model::ReliabilityModel* reliability = nullptr;    ///< optional (TRI-CRIT)
  double deadline = 0.0;
  bool allow_re_execution = false;   ///< TRI-CRIT schedules set this
  double feasibility_tolerance = 1e-7;
};

/// OK iff the schedule is feasible for (dag, mapping) under `input`.
/// The message of a failed status names the first violated constraint.
common::Status validate_schedule(const graph::Dag& dag, const Mapping& mapping,
                                 const Schedule& schedule, const ValidationInput& input);

}  // namespace easched::sched
