#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "graph/analysis.hpp"

namespace easched::sched {

Mapping list_schedule(const graph::Dag& dag, int num_processors, PriorityPolicy policy,
                      common::Rng* rng) {
  const int n = dag.num_tasks();
  EASCHED_CHECK(num_processors >= 1);
  EASCHED_CHECK_MSG(policy != PriorityPolicy::kRandom || rng != nullptr,
                    "kRandom policy needs an rng");
  Mapping mapping(num_processors, n);
  if (n == 0) return mapping;

  // Bottom levels with unit-speed durations (w_i): the classical
  // critical-path priority.
  std::vector<double> bottom(static_cast<std::size_t>(n), 0.0);
  {
    auto order = graph::topological_order(dag);
    EASCHED_CHECK_MSG(order.is_ok(), "list_schedule requires an acyclic graph");
    const auto& topo = order.value();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const TaskId u = *it;
      double best = 0.0;
      for (TaskId v : dag.successors(u)) {
        best = std::max(best, bottom[static_cast<std::size_t>(v)]);
      }
      bottom[static_cast<std::size_t>(u)] = dag.weight(u) + best;
    }
  }

  std::vector<int> remaining_preds(static_cast<std::size_t>(n));
  std::vector<double> ready_time(static_cast<std::size_t>(n), 0.0);  // max pred finish
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < n; ++t) {
    remaining_preds[static_cast<std::size_t>(t)] = dag.in_degree(t);
    if (remaining_preds[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
  }
  std::vector<double> proc_free(static_cast<std::size_t>(num_processors), 0.0);
  std::vector<double> finish(static_cast<std::size_t>(n), 0.0);
  int rr_next_proc = 0;

  for (int scheduled = 0; scheduled < n; ++scheduled) {
    EASCHED_CHECK_MSG(!ready.empty(), "ready set empty before all tasks scheduled (cycle?)");
    // ---- pick a ready task per policy ------------------------------------
    std::size_t pick = 0;
    switch (policy) {
      case PriorityPolicy::kCriticalPath:
        for (std::size_t i = 1; i < ready.size(); ++i) {
          if (bottom[static_cast<std::size_t>(ready[i])] >
              bottom[static_cast<std::size_t>(ready[pick])]) {
            pick = i;
          }
        }
        break;
      case PriorityPolicy::kHeaviestFirst:
        for (std::size_t i = 1; i < ready.size(); ++i) {
          if (dag.weight(ready[i]) > dag.weight(ready[pick])) pick = i;
        }
        break;
      case PriorityPolicy::kRoundRobin:
        pick = 0;  // FIFO
        break;
      case PriorityPolicy::kRandom:
        pick = static_cast<std::size_t>(rng->below(ready.size()));
        break;
    }
    const TaskId t = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));

    // ---- pick a processor -------------------------------------------------
    int proc = 0;
    if (policy == PriorityPolicy::kRoundRobin) {
      proc = rr_next_proc;
      rr_next_proc = (rr_next_proc + 1) % num_processors;
    } else {
      double best_start = std::numeric_limits<double>::infinity();
      for (int p = 0; p < num_processors; ++p) {
        const double start = std::max(proc_free[static_cast<std::size_t>(p)],
                                      ready_time[static_cast<std::size_t>(t)]);
        if (start < best_start) {
          best_start = start;
          proc = p;
        }
      }
    }
    const double start = std::max(proc_free[static_cast<std::size_t>(proc)],
                                  ready_time[static_cast<std::size_t>(t)]);
    finish[static_cast<std::size_t>(t)] = start + dag.weight(t);
    proc_free[static_cast<std::size_t>(proc)] = finish[static_cast<std::size_t>(t)];
    mapping.assign(t, proc);

    for (TaskId v : dag.successors(t)) {
      ready_time[static_cast<std::size_t>(v)] =
          std::max(ready_time[static_cast<std::size_t>(v)], finish[static_cast<std::size_t>(t)]);
      if (--remaining_preds[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
    }
  }
  return mapping;
}

}  // namespace easched::sched
